(* Generator-focused properties: the corpus generator must hit Table 1
   populations exactly for arbitrary valid specs, not just the 20
   curated ones, and the analysis must behave monotonically under
   precision refinements. *)

let table1_of spec =
  let app = Corpus.Gen.generate spec in
  (app, Gator.Metrics.table1 (Gator.Analysis.analyze app))

let exactness =
  QCheck.Test.make ~name:"random specs: generated populations equal the spec" ~count:50
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let spec = Corpus.Gen.random_spec rng in
      let _, row = table1_of spec in
      let checks =
        [
          ("classes", spec.sp_classes, row.t1_classes);
          ("layouts", spec.sp_layouts, row.t1_layout_ids);
          ("view ids", spec.sp_view_ids, row.t1_view_ids);
          ("inflated", spec.sp_inflated_nodes, row.t1_views_inflated);
          ("view allocs", spec.sp_view_allocs, row.t1_views_allocated);
          ("listeners", spec.sp_listener_allocs, row.t1_listeners);
          ("inflate ops", spec.sp_layouts, row.t1_inflate_ops);
          ("findview ops", spec.sp_findview_ops, row.t1_findview_ops);
          ("addview ops", spec.sp_addview_ops, row.t1_addview_ops);
          ("setid ops", spec.sp_setid_ops, row.t1_setid_ops);
          ("setlistener ops", spec.sp_setlistener_ops, row.t1_setlistener_ops);
        ]
      in
      (* Methods are exact whenever the budget is not below the
         structural minimum; never under-filled. *)
      if row.t1_methods < spec.sp_methods then
        QCheck.Test.fail_reportf "seed %d: methods under budget (%d < %d)" seed row.t1_methods
          spec.sp_methods
      else
      match List.find_opt (fun (_, expected, actual) -> expected <> actual) checks with
      | None -> true
      | Some (what, expected, actual) ->
          QCheck.Test.fail_reportf "seed %d (%s): %s expected %d got %d" seed spec.sp_name what
            expected actual)

(* The precision refinements must only remove behaviors: every view in
   a solution set under the default configuration is also there under
   the configuration with cast filtering and the FindOne refinement
   disabled (callback/dialog modeling unchanged: those add flows). *)
let loose_config =
  { Gator.Config.default with cast_filtering = false; findone_refinement = false }

let subset_of_op refined loose op_r op_l =
  let subset f = List.for_all (fun v -> List.mem v (f loose op_l)) (f refined op_r) in
  subset Gator.Analysis.op_receiver_views
  && subset Gator.Analysis.op_child_views
  && subset Gator.Analysis.op_result_views

let monotonicity =
  QCheck.Test.make ~name:"random apps: refinements only shrink solutions" ~count:25
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let spec = Corpus.Gen.random_spec rng in
      let app = Corpus.Gen.generate spec in
      let refined = Gator.Analysis.analyze app in
      let loose = Gator.Analysis.analyze ~config:loose_config app in
      let refined_ops = Gator.Analysis.ops refined in
      let loose_ops = Gator.Analysis.ops loose in
      List.length refined_ops = List.length loose_ops
      && List.for_all2 (subset_of_op refined loose) refined_ops loose_ops)

let determinism =
  QCheck.Test.make ~name:"random specs: generation is deterministic" ~count:20
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng1 = Util.Prng.create seed in
      let rng2 = Util.Prng.create seed in
      let a = Corpus.Gen.generate (Corpus.Gen.random_spec rng1) in
      let b = Corpus.Gen.generate (Corpus.Gen.random_spec rng2) in
      Jir.Ast.equal_program a.program b.program)

let generated_roundtrip =
  QCheck.Test.make ~name:"random apps: programs print and reparse" ~count:15
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let app = Corpus.Gen.generate (Corpus.Gen.random_spec rng) in
      match Jir.Parser.parse_program_result (Jir.Pp.program_to_string app.program) with
      | Ok p -> Jir.Ast.equal_program p app.program
      | Error e -> QCheck.Test.fail_reportf "reparse: %s" e)

let generated_wellformed =
  QCheck.Test.make ~name:"random apps: no well-formedness errors" ~count:15
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let app = Corpus.Gen.generate (Corpus.Gen.random_spec rng) in
      let errors = Jir.Wellformed.errors (Framework.App.diagnostics app) in
      if errors = [] then true
      else
        QCheck.Test.fail_reportf "%s"
          (Fmt.str "%a" (Fmt.list Jir.Wellformed.pp_diagnostic) errors))

let suite =
  [
    QCheck_alcotest.to_alcotest exactness;
    QCheck_alcotest.to_alcotest monotonicity;
    QCheck_alcotest.to_alcotest determinism;
    QCheck_alcotest.to_alcotest generated_roundtrip;
    QCheck_alcotest.to_alcotest generated_wellformed;
  ]
