(* Dynamic-semantics tests: heap behaviors and end-to-end runs. *)

let app_of ?(layouts = []) code =
  match Framework.App.of_source ~name:"T" ~code ~layouts with
  | Ok app -> app
  | Error e -> Alcotest.failf "app_of: %s" e

let run ?options ?layouts code = Dynamic.Interp.run ?options (app_of ?layouts code)

let objects_of_class (outcome : Dynamic.Interp.outcome) cls =
  List.filter (fun (o : Dynamic.Heap.obj) -> o.cls = cls) (Dynamic.Heap.objects outcome.heap)

(* ---------------- heap unit tests ---------------- *)

let test_heap_fields () =
  let h = Dynamic.Heap.create () in
  let o = Dynamic.Heap.alloc h ~cls:"C" (Dynamic.Heap.P_internal "t") in
  Alcotest.check Alcotest.bool "unset reads null" true (Dynamic.Heap.read_field o "f" = Dynamic.Heap.V_null);
  Dynamic.Heap.write_field o "f" (Dynamic.Heap.V_int 3);
  Alcotest.check Alcotest.bool "read back" true (Dynamic.Heap.read_field o "f" = Dynamic.Heap.V_int 3)

let test_heap_reparenting () =
  let h = Dynamic.Heap.create () in
  let p1 = Dynamic.Heap.alloc h ~cls:"P1" (Dynamic.Heap.P_internal "t") in
  let p2 = Dynamic.Heap.alloc h ~cls:"P2" (Dynamic.Heap.P_internal "t") in
  let c = Dynamic.Heap.alloc h ~cls:"C" (Dynamic.Heap.P_internal "t") in
  Dynamic.Heap.add_child h ~parent:p1 ~child:c;
  Dynamic.Heap.add_child h ~parent:p2 ~child:c;
  Alcotest.check (Alcotest.list Alcotest.int) "p1 lost the child" [] p1.children;
  Alcotest.check (Alcotest.list Alcotest.int) "p2 has it" [ c.id ] p2.children;
  Alcotest.check Alcotest.(option int) "parent pointer" (Some p2.id) c.parent

let test_heap_cycle_refused () =
  let h = Dynamic.Heap.create () in
  let a = Dynamic.Heap.alloc h ~cls:"A" (Dynamic.Heap.P_internal "t") in
  let b = Dynamic.Heap.alloc h ~cls:"B" (Dynamic.Heap.P_internal "t") in
  Dynamic.Heap.add_child h ~parent:a ~child:b;
  (* adding the ancestor under its descendant must be refused *)
  Dynamic.Heap.add_child h ~parent:b ~child:a;
  Alcotest.check (Alcotest.list Alcotest.int) "b has no children" [] b.children;
  Alcotest.check Alcotest.bool "a stays a root" true (a.parent = None);
  (* lookups terminate *)
  Alcotest.check Alcotest.bool "find terminates" true (Dynamic.Heap.find_by_vid h a 1 = None)

let test_heap_self_child_ignored () =
  let h = Dynamic.Heap.create () in
  let o = Dynamic.Heap.alloc h ~cls:"C" (Dynamic.Heap.P_internal "t") in
  Dynamic.Heap.add_child h ~parent:o ~child:o;
  Alcotest.check (Alcotest.list Alcotest.int) "no self edge" [] o.children

let test_heap_descendants_and_find () =
  let h = Dynamic.Heap.create () in
  let a = Dynamic.Heap.alloc h ~cls:"A" (Dynamic.Heap.P_internal "t") in
  let b = Dynamic.Heap.alloc h ~cls:"B" (Dynamic.Heap.P_internal "t") in
  let c = Dynamic.Heap.alloc h ~cls:"C" (Dynamic.Heap.P_internal "t") in
  Dynamic.Heap.add_child h ~parent:a ~child:b;
  Dynamic.Heap.add_child h ~parent:b ~child:c;
  c.vid <- Some 7;
  Alcotest.check Alcotest.int "preorder size" 3 (List.length (Dynamic.Heap.descendants h a));
  Alcotest.check Alcotest.int "strict" 2
    (List.length (Dynamic.Heap.descendants h ~include_self:false a));
  (match Dynamic.Heap.find_by_vid h a 7 with
  | Some found -> Alcotest.check Alcotest.int "dfs find" c.id found.id
  | None -> Alcotest.fail "vid not found");
  Alcotest.check Alcotest.bool "missing vid" true (Dynamic.Heap.find_by_vid h a 8 = None)

let test_find_by_vid_prefers_self () =
  let h = Dynamic.Heap.create () in
  let a = Dynamic.Heap.alloc h ~cls:"A" (Dynamic.Heap.P_internal "t") in
  a.vid <- Some 5;
  match Dynamic.Heap.find_by_vid h a 5 with
  | Some found -> Alcotest.check Alcotest.int "self" a.id found.id
  | None -> Alcotest.fail "self lookup failed"

(* ---------------- interpreter tests ---------------- *)

let test_lifecycle_runs () =
  let outcome =
    run
      {|class A extends Activity {
          field mark: int;
          method onCreate(): void { x = 1; this.mark = x; }
          method onResume(): void { y = 2; this.mark = y; } }|}
  in
  match objects_of_class outcome "A" with
  | [ a ] ->
      Alcotest.check Alcotest.bool "onResume ran last" true
        (Dynamic.Heap.read_field a "mark" = Dynamic.Heap.V_int 2)
  | _ -> Alcotest.fail "expected one activity object"

let test_set_content_inflates () =
  let outcome =
    run
      ~layouts:[ ("main", {|<LinearLayout><Button android:id="@+id/b" /></LinearLayout>|}) ]
      {|class A extends Activity {
          method onCreate(): void { l = R.layout.main; this.setContentView(l); } }|}
  in
  Alcotest.check Alcotest.int "linear layout created" 1
    (List.length (objects_of_class outcome "LinearLayout"));
  Alcotest.check Alcotest.int "button created" 1 (List.length (objects_of_class outcome "Button"));
  match objects_of_class outcome "A" with
  | [ a ] -> Alcotest.check Alcotest.bool "root set" true (a.root <> None)
  | _ -> Alcotest.fail "expected one activity"

let test_find_view_and_cast () =
  let outcome =
    run
      ~layouts:[ ("main", {|<LinearLayout><Button android:id="@+id/b" /></LinearLayout>|}) ]
      {|class A extends Activity {
          field good: Button;
          field bad: TextView;
          method onCreate(): void {
            l = R.layout.main; this.setContentView(l);
            i = R.id.b;
            v = this.findViewById(i);
            g = (Button) v;
            this.good = g;
            w = (ImageView) v;
            this.bad = w;
          } }|}
  in
  match objects_of_class outcome "A" with
  | [ a ] ->
      Alcotest.check Alcotest.bool "successful cast stored" true
        (Dynamic.Heap.read_field a "good" <> Dynamic.Heap.V_null);
      Alcotest.check Alcotest.bool "failed cast nulls" true
        (Dynamic.Heap.read_field a "bad" = Dynamic.Heap.V_null)
  | _ -> Alcotest.fail "expected one activity"

let test_null_safety () =
  (* every operation on null is a no-op, not a crash *)
  let outcome =
    run
      {|class A extends Activity {
          method onCreate(): void {
            n = null;
            x = n.findViewById(n);
            n.addView(n);
            y = n.f;
            n.f = y;
            z = (Button) n;
          } }|}
  in
  Alcotest.check Alcotest.bool "no truncation" false outcome.truncated;
  Alcotest.check Alcotest.int "no observations from null ops" 0 (List.length outcome.observations)

let test_recursion_bounded () =
  let outcome =
    run {|class A extends Activity { method onCreate(): void { this.onCreate(); } }|}
  in
  Alcotest.check Alcotest.bool "truncated" true outcome.truncated

let test_step_budget () =
  let options = { Dynamic.Interp.default_options with max_steps = 5 } in
  let outcome =
    run ~options
      {|class A extends Activity {
          method onCreate(): void { a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; g = 7; } }|}
  in
  Alcotest.check Alcotest.bool "truncated by fuel" true outcome.truncated

let test_event_firing () =
  let outcome =
    run
      {|class A extends Activity {
          method onCreate(): void {
            b = new Button();
            this.setContentView(b);
            j = new L();
            j.init(this);
            b.setOnClickListener(j);
          } }
        class L implements OnClickListener {
          field owner: A;
          method init(a: A): void { this.owner = a; }
          method onClick(v: View): void { w = v.getParent(); } }|}
  in
  Alcotest.check Alcotest.int "one registration" 1 (List.length outcome.registrations);
  let clicks =
    List.filter (fun (f : Dynamic.Interp.firing) -> f.f_event = Framework.Listeners.Click) outcome.firings
  in
  Alcotest.check Alcotest.bool "fired at least once" true (List.length clicks >= 1);
  (match clicks with
  | f :: _ ->
      Alcotest.check (Alcotest.list Alcotest.string) "containing activity" [ "A" ] f.f_activities
  | [] -> ());
  (* the handler body executed: it performed a GetParent op on the view *)
  Alcotest.check Alcotest.bool "handler observed ops" true
    (List.exists
       (fun (ob : Dynamic.Interp.observation) ->
         ob.ob_op.o_kind = Framework.Api.Get_parent)
       outcome.observations)

let test_wrong_listener_type_ignored () =
  let outcome =
    run
      {|class A extends Activity {
          method onCreate(): void {
            b = new Button();
            h = new Helper();
            b.setOnClickListener(h);
          } }
        class Helper { }|}
  in
  Alcotest.check Alcotest.int "no registration" 0 (List.length outcome.registrations)

let test_flipper_rotation () =
  (* Two children; over three event rounds getCurrentView must return
     more than one distinct child. *)
  let outcome =
    run
      {|class A extends Activity {
          field flip: ViewFlipper;
          method onCreate(): void {
            fl = new ViewFlipper();
            this.flip = fl;
            this.setContentView(fl);
            a = new Button();
            b = new TextView();
            fl.addView(a);
            fl.addView(b);
            j = new L();
            j.init(this);
            fl.setOnClickListener(j);
          } }
        class L implements OnClickListener {
          field owner: A;
          method init(a: A): void { this.owner = a; }
          method onClick(v: View): void {
            o = this.owner;
            f = o.flip;
            c = f.getCurrentView();
          } }|}
  in
  let results =
    List.filter_map
      (fun (ob : Dynamic.Interp.observation) ->
        match (ob.ob_op.o_kind, ob.ob_role) with
        | Framework.Api.Find_one _, Dynamic.Interp.R_result -> Some ob.ob_value
        | _ -> None)
      outcome.observations
  in
  let distinct = List.sort_uniq compare results in
  Alcotest.check Alcotest.bool "rotation explores children" true (List.length distinct >= 2)

let test_dialog_callbacks_run () =
  let outcome =
    run
      {|class A extends Activity {
          method onCreate(): void { d = new MyDialog(); } }
        class MyDialog extends Dialog {
          field mark: int;
          method onCreate(): void { x = 9; this.mark = x; } }|}
  in
  match objects_of_class outcome "MyDialog" with
  | [ d ] ->
      Alcotest.check Alcotest.bool "dialog onCreate ran" true
        (Dynamic.Heap.read_field d "mark" = Dynamic.Heap.V_int 9)
  | _ -> Alcotest.fail "expected one dialog"

let test_observation_sites_are_structural () =
  let outcome =
    run
      {|class A extends Activity {
          method onCreate(): void { b = new Button(); i = 5; b.setId(i); } }|}
  in
  match outcome.observations with
  | [ ob ] ->
      Alcotest.check Alcotest.string "site method" "onCreate" ob.ob_op.o_site.s_in.mid_name;
      Alcotest.check Alcotest.int "site stmt" 2 ob.ob_op.o_site.s_stmt
  | obs -> Alcotest.failf "expected one observation, got %d" (List.length obs)

let test_determinism () =
  let app = Corpus.Connectbot.app () in
  let a = Dynamic.Interp.run app in
  let b = Dynamic.Interp.run app in
  Alcotest.check Alcotest.int "same observation count" (List.length a.observations)
    (List.length b.observations);
  Alcotest.check Alcotest.bool "same observations" true (a.observations = b.observations)

let suite =
  [
    Alcotest.test_case "heap fields" `Quick test_heap_fields;
    Alcotest.test_case "heap reparenting keeps a forest" `Quick test_heap_reparenting;
    Alcotest.test_case "heap refuses cycles" `Quick test_heap_cycle_refused;
    Alcotest.test_case "self child ignored" `Quick test_heap_self_child_ignored;
    Alcotest.test_case "descendants and find_by_vid" `Quick test_heap_descendants_and_find;
    Alcotest.test_case "find_by_vid matches receiver" `Quick test_find_by_vid_prefers_self;
    Alcotest.test_case "lifecycle callbacks run in order" `Quick test_lifecycle_runs;
    Alcotest.test_case "setContentView inflates" `Quick test_set_content_inflates;
    Alcotest.test_case "findViewById and casts" `Quick test_find_view_and_cast;
    Alcotest.test_case "null safety" `Quick test_null_safety;
    Alcotest.test_case "recursion is bounded" `Quick test_recursion_bounded;
    Alcotest.test_case "step budget" `Quick test_step_budget;
    Alcotest.test_case "event firing" `Quick test_event_firing;
    Alcotest.test_case "non-listener argument ignored" `Quick test_wrong_listener_type_ignored;
    Alcotest.test_case "flipper rotation explores children" `Quick test_flipper_rotation;
    Alcotest.test_case "dialog callbacks run" `Quick test_dialog_callbacks_run;
    Alcotest.test_case "observation sites are structural" `Quick test_observation_sites_are_structural;
    Alcotest.test_case "runs are deterministic" `Quick test_determinism;
  ]
