open Jir

let platform = Framework.Api.platform_decls

let no_external ~recv_ty:_ _ _ = None

let env_of ?(external_return = no_external) ~owner src meth_name =
  let program = Parser.parse_program src in
  let hierarchy = Hierarchy.create ~platform program in
  let cls = Option.get (Ast.find_class program owner) in
  let m = List.find (fun (m : Ast.meth) -> m.m_name = meth_name) cls.c_methods in
  Typing.infer ~hierarchy ~external_return ~owner m

let check_ty env v expected =
  Alcotest.check Alcotest.bool (Printf.sprintf "type of %s" v) true
    (Typing.ty_of env v = expected)

let test_this_and_params () =
  let env = env_of ~owner:"C" "class C { method m(a: int, b: Button): void { } }" "m" in
  check_ty env "this" (Some (Ast.Tclass "C"));
  check_ty env "a" (Some Ast.Tint);
  check_ty env "b" (Some (Ast.Tclass "Button"))

let test_new_and_cast () =
  let env =
    env_of ~owner:"C" "class C { method m(): void { x = new Button(); y = (TextView) x; } }" "m"
  in
  check_ty env "x" (Some (Ast.Tclass "Button"));
  check_ty env "y" (Some (Ast.Tclass "TextView"))

let test_resource_ints () =
  let env =
    env_of ~owner:"C" "class C { method m(): void { a = R.layout.l; b = R.id.v; c = 3; } }" "m"
  in
  check_ty env "a" (Some Ast.Tint);
  check_ty env "b" (Some Ast.Tint);
  check_ty env "c" (Some Ast.Tint)

let test_copy_chain () =
  let env = env_of ~owner:"C" "class C { method m(): void { x = new Button(); y = x; z = y; } }" "m" in
  check_ty env "z" (Some (Ast.Tclass "Button"))

let test_field_type () =
  let env =
    env_of ~owner:"C" "class C { field f: TextView; method m(): void { x = this.f; } }" "m"
  in
  check_ty env "x" (Some (Ast.Tclass "TextView"))

let test_app_call_return () =
  let src =
    "class C { method mk(): Button { x = new Button(); return x; } method m(): void { y = this.mk(); } }"
  in
  let env = env_of ~owner:"C" src "m" in
  check_ty env "y" (Some (Ast.Tclass "Button"))

let test_external_return () =
  let env =
    env_of ~external_return:Framework.Api.return_ty ~owner:"C"
      "class C { method m(x: Button): void { v = x.findViewById(a); a = R.id.q; } }" "m"
  in
  check_ty env "v" (Some (Ast.Tclass "View"))

let test_join_to_lcs () =
  (* x is assigned Button and TextView along different statements: the
     inferred type must be their least common superclass TextView. *)
  let env =
    env_of ~owner:"C"
      "class C { method m(): void { x = new Button(); x = new TextView(); } }" "m"
  in
  check_ty env "x" (Some (Ast.Tclass "TextView"))

let test_conflict_is_unknown () =
  (* int vs reference: irreconcilable, must stay unknown (soundness of
     CHA depends on it). *)
  let env = env_of ~owner:"C" "class C { method m(): void { x = new Button(); x = 3; } }" "m" in
  check_ty env "x" None

let test_declared_wins () =
  let env =
    env_of ~owner:"C" "class C { method m(): void { var x: View; x = new Button(); } }" "m"
  in
  check_ty env "x" (Some (Ast.Tclass "View"))

let test_lcs () =
  let hierarchy = Hierarchy.create ~platform (Parser.parse_program "class C { }") in
  let lcs = Typing.least_common_superclass hierarchy in
  Alcotest.check Alcotest.(option string) "same" (Some "Button") (lcs "Button" "Button");
  Alcotest.check Alcotest.(option string) "sub/super" (Some "TextView") (lcs "Button" "TextView");
  Alcotest.check Alcotest.(option string) "siblings" (Some "View") (lcs "Button" "ImageView");
  Alcotest.check Alcotest.(option string) "distant" (Some "Object") (lcs "Button" "Activity")

let suite =
  [
    Alcotest.test_case "this and params" `Quick test_this_and_params;
    Alcotest.test_case "new and cast" `Quick test_new_and_cast;
    Alcotest.test_case "resource reads are ints" `Quick test_resource_ints;
    Alcotest.test_case "copy chains" `Quick test_copy_chain;
    Alcotest.test_case "field reads" `Quick test_field_type;
    Alcotest.test_case "application call returns" `Quick test_app_call_return;
    Alcotest.test_case "platform call returns" `Quick test_external_return;
    Alcotest.test_case "join to least common superclass" `Quick test_join_to_lcs;
    Alcotest.test_case "conflicting defs stay unknown" `Quick test_conflict_is_unknown;
    Alcotest.test_case "declared types win" `Quick test_declared_wins;
    Alcotest.test_case "least_common_superclass" `Quick test_lcs;
  ]
