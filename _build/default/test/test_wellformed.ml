open Jir

let platform = Framework.Api.platform_decls

let diagnostics src = Wellformed.check ~platform (Parser.parse_program src)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let has diags severity fragment =
  List.exists
    (fun (d : Wellformed.diagnostic) -> d.severity = severity && contains d.message fragment)
    diags

let test_clean () =
  let diags = diagnostics "class C extends Activity { method onCreate(): void { x = new Button(); } }" in
  Alcotest.check Alcotest.bool "clean" true (Wellformed.is_clean diags)

let test_duplicate_class () =
  Alcotest.check Alcotest.bool "dup class" true
    (has (diagnostics "class A { } class A { }") Wellformed.Error "duplicate type")

let test_unknown_super () =
  Alcotest.check Alcotest.bool "unknown super warns" true
    (has (diagnostics "class A extends Mystery { }") Wellformed.Warning "unknown supertype")

let test_extends_interface () =
  Alcotest.check Alcotest.bool "extends interface" true
    (has (diagnostics "class A extends OnClickListener { }") Wellformed.Error "extends interface")

let test_implements_class () =
  Alcotest.check Alcotest.bool "implements class" true
    (has (diagnostics "class A implements Button { }") Wellformed.Error "implements class")

let test_cycle () =
  Alcotest.check Alcotest.bool "cycle reported" true
    (has
       (diagnostics "class A extends B { } class B extends A { }")
       Wellformed.Error "inheritance cycle")

let test_duplicate_field () =
  Alcotest.check Alcotest.bool "dup field" true
    (has (diagnostics "class A { field f: int; field f: int; }") Wellformed.Error "duplicate field")

let test_duplicate_method () =
  Alcotest.check Alcotest.bool "dup method" true
    (has
       (diagnostics "class A { method m(): void { } method m(): void { } }")
       Wellformed.Error "duplicate method")

let test_overload_by_arity_ok () =
  let diags = diagnostics "class A { method m(): void { } method m(x: int): void { } }" in
  Alcotest.check Alcotest.bool "arity overload is fine" true (Wellformed.is_clean diags)

let test_duplicate_param () =
  Alcotest.check Alcotest.bool "dup param" true
    (has
       (diagnostics "class A { method m(x: int, x: int): void { } }")
       Wellformed.Error "duplicate parameter")

let test_this_redeclared () =
  Alcotest.check Alcotest.bool "this param" true
    (has
       (diagnostics "class A { method m(this: int): void { } }")
       Wellformed.Error "'this' cannot be redeclared")

let test_undefined_variable () =
  Alcotest.check Alcotest.bool "undefined use" true
    (has
       (diagnostics "class A { method m(): void { x = y; } }")
       Wellformed.Error "used but never defined")

let test_param_use_ok () =
  let diags = diagnostics "class A { method m(y: int): void { x = y; } }" in
  Alcotest.check Alcotest.bool "param use" true (Wellformed.is_clean diags)

let test_return_value_in_void () =
  Alcotest.check Alcotest.bool "value from void" true
    (has
       (diagnostics "class A { method m(): void { x = 1; return x; } }")
       Wellformed.Error "value returned from a void method")

let test_bare_return_warns () =
  Alcotest.check Alcotest.bool "bare return" true
    (has (diagnostics "class A { method m(): int { return; } }") Wellformed.Warning "bare return")

let test_new_interface () =
  Alcotest.check Alcotest.bool "new interface" true
    (has
       (diagnostics "class A { method m(): void { x = new OnClickListener(); } }")
       Wellformed.Error "cannot instantiate interface")

let test_unknown_new_warns () =
  Alcotest.check Alcotest.bool "unknown new" true
    (has
       (diagnostics "class A { method m(): void { x = new Mystery(); } }")
       Wellformed.Warning "unknown type")

let test_errors_filter () =
  let diags = diagnostics "class A extends Mystery { method m(): void { x = y; } }" in
  let errors = Wellformed.errors diags in
  Alcotest.check Alcotest.bool "errors subset" true (List.length errors < List.length diags);
  Alcotest.check Alcotest.bool "not clean" false (Wellformed.is_clean diags)

let test_connectbot_clean () =
  let diags = diagnostics Corpus.Connectbot.source in
  Alcotest.check Alcotest.bool "figure 1 is clean" true (Wellformed.is_clean diags)

let suite =
  [
    Alcotest.test_case "clean program" `Quick test_clean;
    Alcotest.test_case "duplicate class" `Quick test_duplicate_class;
    Alcotest.test_case "unknown supertype warns" `Quick test_unknown_super;
    Alcotest.test_case "extends interface" `Quick test_extends_interface;
    Alcotest.test_case "implements class" `Quick test_implements_class;
    Alcotest.test_case "inheritance cycle" `Quick test_cycle;
    Alcotest.test_case "duplicate field" `Quick test_duplicate_field;
    Alcotest.test_case "duplicate method" `Quick test_duplicate_method;
    Alcotest.test_case "arity overloading allowed" `Quick test_overload_by_arity_ok;
    Alcotest.test_case "duplicate parameter" `Quick test_duplicate_param;
    Alcotest.test_case "this redeclaration" `Quick test_this_redeclared;
    Alcotest.test_case "undefined variable" `Quick test_undefined_variable;
    Alcotest.test_case "parameter use is defined" `Quick test_param_use_ok;
    Alcotest.test_case "return value in void method" `Quick test_return_value_in_void;
    Alcotest.test_case "bare return in non-void warns" `Quick test_bare_return_warns;
    Alcotest.test_case "instantiating an interface" `Quick test_new_interface;
    Alcotest.test_case "unknown class in new warns" `Quick test_unknown_new_warns;
    Alcotest.test_case "errors filter" `Quick test_errors_filter;
    Alcotest.test_case "Figure 1 program is clean" `Quick test_connectbot_clean;
  ]
