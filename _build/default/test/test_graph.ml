open Gator

let mid name = { Node.mid_cls = "C"; mid_name = name; mid_arity = 0 }

let site ?(stmt = 0) name = { Node.s_in = mid name; s_stmt = stmt }

let var name v = Node.N_var (mid name, v)

let infl ?(path = []) ?(cls = "View") ?vid name =
  Node.V_infl { Node.v_site = site name; v_layout = "l"; v_path = path; v_cls = cls; v_vid = vid }

let test_add_value_grows_once () =
  let g = Graph.create () in
  let n = var "m" "x" in
  Alcotest.check Alcotest.bool "first add" true (Graph.add_value g n (Node.V_view_id 1));
  Alcotest.check Alcotest.bool "second add" false (Graph.add_value g n (Node.V_view_id 1));
  Alcotest.check Alcotest.int "set size" 1 (Graph.VS.cardinal (Graph.set_of g n))

let test_edges_dedup () =
  let g = Graph.create () in
  let a = var "m" "a" and b = var "m" "b" in
  Graph.add_edge g a b;
  Graph.add_edge g a b;
  Graph.add_edge g ~kind:(Graph.E_cast "Button") a b;
  Alcotest.check Alcotest.int "two distinct edges" 2 (Graph.edge_count g);
  Alcotest.check Alcotest.int "succs" 2 (List.length (Graph.succs g a))

let test_seeds_survive_reset () =
  let g = Graph.create () in
  let n = var "m" "x" in
  Graph.seed g n (Node.V_act "A");
  ignore (Graph.add_value g n (Node.V_view_id 9));
  Graph.reset_sets g;
  Alcotest.check Alcotest.int "sets cleared" 0 (Graph.VS.cardinal (Graph.set_of g n));
  Alcotest.check Alcotest.int "seed kept" 1 (List.length (Graph.seeds g))

let test_children_relation () =
  let g = Graph.create () in
  let p = infl "a" and c1 = infl ~path:[ 0 ] "a" and c2 = infl ~path:[ 1 ] "a" in
  Alcotest.check Alcotest.bool "grew" true (Graph.add_child g ~parent:p ~child:c1);
  Alcotest.check Alcotest.bool "idempotent" false (Graph.add_child g ~parent:p ~child:c1);
  ignore (Graph.add_child g ~parent:p ~child:c2);
  Alcotest.check Alcotest.int "children" 2 (Graph.View_set.cardinal (Graph.children_of g p));
  Alcotest.check Alcotest.bool "parents inverse" true
    (Graph.View_set.mem p (Graph.parents_of g c1))

let test_descendants () =
  let g = Graph.create () in
  let a = infl "a" and b = infl ~path:[ 0 ] "a" and c = infl ~path:[ 0; 0 ] "a" in
  ignore (Graph.add_child g ~parent:a ~child:b);
  ignore (Graph.add_child g ~parent:b ~child:c);
  Alcotest.check Alcotest.int "inclusive" 3
    (Graph.View_set.cardinal (Graph.descendants g ~include_self:true a));
  Alcotest.check Alcotest.int "strict" 2
    (Graph.View_set.cardinal (Graph.descendants g ~include_self:false a));
  Alcotest.check Alcotest.bool "transitive" true
    (Graph.View_set.mem c (Graph.descendants g ~include_self:false a))

let test_descendants_cycle_safe () =
  (* The abstract parent-child relation can be cyclic (unlike the
     concrete heap); BFS must still terminate. *)
  let g = Graph.create () in
  let a = infl "a" and b = infl ~path:[ 0 ] "a" in
  ignore (Graph.add_child g ~parent:a ~child:b);
  ignore (Graph.add_child g ~parent:b ~child:a);
  Alcotest.check Alcotest.int "cycle bounded" 2
    (Graph.View_set.cardinal (Graph.descendants g ~include_self:true a))

let test_view_ids () =
  let g = Graph.create () in
  let v = infl "a" in
  ignore (Graph.add_view_id g v 100);
  ignore (Graph.add_view_id g v 200);
  Alcotest.check Alcotest.bool "both ids" true
    (Graph.Int_set.mem 100 (Graph.ids_of_view g v) && Graph.Int_set.mem 200 (Graph.ids_of_view g v))

let test_holder_roots () =
  let g = Graph.create () in
  let v = infl "a" in
  ignore (Graph.add_holder_root g (Node.H_act "A") v);
  Alcotest.check Alcotest.int "root" 1
    (Graph.View_set.cardinal (Graph.roots_of_holder g (Node.H_act "A")));
  Alcotest.check Alcotest.int "holders" 1 (List.length (Graph.holders g))

let test_listeners_relation () =
  let g = Graph.create () in
  let v = infl "a" in
  let l = Node.L_act "A" in
  ignore (Graph.add_view_listener g v l ~iface:"OnClickListener");
  ignore (Graph.add_view_listener g v l ~iface:"OnKeyListener");
  Alcotest.check Alcotest.int "two registrations" 2
    (Graph.Listener_set.cardinal (Graph.listeners_of_view g v));
  Alcotest.check Alcotest.int "views with listeners" 1 (List.length (Graph.views_with_listeners g))

let test_inflation_memo () =
  let g = Graph.create () in
  let s = site "a" in
  Alcotest.check Alcotest.bool "absent" true (Graph.find_inflation g ~site:s ~layout:"l" = None);
  Graph.record_inflation g ~site:s ~layout:"l" [ infl "a" ];
  Alcotest.check Alcotest.bool "present" true (Graph.find_inflation g ~site:s ~layout:"l" <> None);
  Alcotest.check Alcotest.int "inflated views" 1 (List.length (Graph.inflated_views g))

let test_ops_order () =
  let g = Graph.create () in
  let o1 = Graph.fresh_op g ~kind:Framework.Api.Find_view ~site:(site ~stmt:0 "m") ~recv:(var "m" "x") ~args:[] ~out:None in
  let o2 = Graph.fresh_op g ~kind:Framework.Api.Add_view ~site:(site ~stmt:1 "m") ~recv:(var "m" "y") ~args:[] ~out:None in
  Alcotest.check Alcotest.bool "creation order" true (Graph.ops g = [ o1; o2 ])

let test_locations () =
  let g = Graph.create () in
  Graph.add_edge g (var "m" "a") (var "m" "b");
  Graph.seed g (var "m" "c") (Node.V_act "A");
  Alcotest.check Alcotest.int "locations" 3 (List.length (Graph.locations g))

let test_dot_output () =
  let g = Graph.create () in
  Graph.add_edge g (var "m" "a") (var "m" "b");
  ignore (Graph.add_child g ~parent:(infl "a") ~child:(infl ~path:[ 0 ] "a"));
  let dot = Fmt.str "%a" Graph.pp_dot g in
  Alcotest.check Alcotest.bool "digraph wrapper" true
    (String.length dot > 20
    && String.sub dot 0 7 = "digraph"
    && String.contains dot '}')

let suite =
  [
    Alcotest.test_case "add_value grows once" `Quick test_add_value_grows_once;
    Alcotest.test_case "edge dedup by kind" `Quick test_edges_dedup;
    Alcotest.test_case "reset keeps seeds" `Quick test_seeds_survive_reset;
    Alcotest.test_case "children relation" `Quick test_children_relation;
    Alcotest.test_case "descendants closure" `Quick test_descendants;
    Alcotest.test_case "descendants on cyclic relation" `Quick test_descendants_cycle_safe;
    Alcotest.test_case "view ids" `Quick test_view_ids;
    Alcotest.test_case "holder roots" `Quick test_holder_roots;
    Alcotest.test_case "listener registrations" `Quick test_listeners_relation;
    Alcotest.test_case "inflation memo" `Quick test_inflation_memo;
    Alcotest.test_case "op creation order" `Quick test_ops_order;
    Alcotest.test_case "locations" `Quick test_locations;
    Alcotest.test_case "dot output" `Quick test_dot_output;
  ]
