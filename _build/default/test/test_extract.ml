open Gator

let app_of ?(layouts = []) code =
  match Framework.App.of_source ~name:"T" ~code ~layouts with
  | Ok app -> app
  | Error e -> Alcotest.failf "app_of: %s" e

let graph_of ?layouts code = Extract.run Config.default (app_of ?layouts code)

let kinds graph =
  List.map (fun (op : Graph.op) -> Framework.Api.kind_label op.site.o_kind) (Graph.ops graph)

let test_op_recognition () =
  let g =
    graph_of
      {|class A extends Activity {
          method onCreate(): void {
            l = R.layout.main;
            this.setContentView(l);
            a = R.id.x;
            v = this.findViewById(a);
            w = new Button();
            w.setId(a);
            v.addView(w);
            j = new L();
            w.setOnClickListener(j);
          } }
        class L implements OnClickListener { method onClick(v: View): void { } }|}
  in
  Alcotest.check (Alcotest.list Alcotest.string) "op kinds in order"
    [ "SetContent"; "FindView"; "SetId"; "AddView"; "SetListener" ]
    (kinds g)

let test_allocs_and_seeds () =
  let g = graph_of "class A { method m(): void { x = new Button(); y = new A(); } }" in
  match Graph.allocs g with
  | [ b; a ] ->
      Alcotest.check Alcotest.string "button" "Button" b.a_cls;
      Alcotest.check Alcotest.string "plain" "A" a.a_cls;
      Alcotest.check Alcotest.int "sites distinct" 1 a.a_site.s_stmt
  | _ -> Alcotest.fail "expected two allocation sites"

let test_app_override_shadows_api () =
  (* Figure 1: an application-defined findViewById-like helper on a
     known receiver type consumes the call; no operation node is
     created for it. *)
  let g =
    graph_of
      {|class A extends Activity {
          method findViewById(a: int): View { v = null; return v; }
          method onCreate(): void { a = R.id.x; v = this.findViewById(a); } }|}
  in
  Alcotest.check (Alcotest.list Alcotest.string) "no FindView op" [] (kinds g)

let test_partial_override_keeps_op () =
  (* The static type has a subclass without the override, so the
     platform can still be reached: both the call edge and the op are
     needed. *)
  let g =
    graph_of
      {|class A extends Activity {
          method onCreate(): void { b = new B(); a = R.id.x; v = b.use(a); } }
        class B extends ViewGroup { method use(a: int): View { w = this.findViewById(a); return w; } }|}
  in
  Alcotest.check (Alcotest.list Alcotest.string) "op inside B.use" [ "FindView" ] (kinds g)

let test_unknown_receiver_gets_both () =
  (* x = y (untyped y): call may hit the app helper or the platform;
     the extraction must model both. *)
  let code =
    {|class A extends Activity {
        field f: int;
        method helper(a: int): View { v = null; return v; }
        method onCreate(): void {
          u = this.mystery();
          a = R.id.x;
          v = u.findViewById(a);
        } }|}
  in
  let g = graph_of code in
  Alcotest.check (Alcotest.list Alcotest.string) "platform op kept" [ "FindView" ] (kinds g)

let test_callback_seeding () =
  let g =
    graph_of
      {|class A extends Activity { method onCreate(): void { } method onResume(): void { } }|}
  in
  let this_of name =
    Graph.set_of g
      (Node.N_var ({ Node.mid_cls = "A"; mid_name = name; mid_arity = 0 }, Jir.Ast.this_var))
  in
  Graph.reset_sets g;
  (* apply seeds manually *)
  List.iter (fun (n, vs) -> Graph.VS.iter (fun v -> ignore (Graph.add_value g n v)) vs) (Graph.seeds g);
  Alcotest.check Alcotest.bool "onCreate seeded" true
    (Graph.VS.mem (Node.V_act "A") (this_of "onCreate"));
  Alcotest.check Alcotest.bool "onResume seeded" true
    (Graph.VS.mem (Node.V_act "A") (this_of "onResume"));
  Alcotest.check Alcotest.bool "random method not seeded" true
    (Graph.VS.is_empty (this_of "helper"))

let test_inherited_callback_seeding () =
  let g =
    graph_of
      {|class Base extends Activity { method onCreate(): void { } }
        class Derived extends Base { }|}
  in
  List.iter (fun (n, vs) -> Graph.VS.iter (fun v -> ignore (Graph.add_value g n v)) vs) (Graph.seeds g);
  let s =
    Graph.set_of g
      (Node.N_var ({ Node.mid_cls = "Base"; mid_name = "onCreate"; mid_arity = 0 }, Jir.Ast.this_var))
  in
  Alcotest.check Alcotest.bool "both activities reach the shared onCreate" true
    (Graph.VS.mem (Node.V_act "Base") s && Graph.VS.mem (Node.V_act "Derived") s)

let test_call_edges () =
  let g =
    graph_of
      {|class A { method callee(p: View): View { return p; }
                 method caller(v: View): void { w = this.callee(v); } }|}
  in
  let caller = { Node.mid_cls = "A"; mid_name = "caller"; mid_arity = 1 } in
  let callee = { Node.mid_cls = "A"; mid_name = "callee"; mid_arity = 1 } in
  let succs_of v = List.map snd (Graph.succs g v) in
  Alcotest.check Alcotest.bool "arg edge" true
    (List.mem (Node.N_var (callee, "p")) (succs_of (Node.N_var (caller, "v"))));
  Alcotest.check Alcotest.bool "this edge" true
    (List.mem (Node.N_var (callee, Jir.Ast.this_var)) (succs_of (Node.N_var (caller, Jir.Ast.this_var))));
  Alcotest.check Alcotest.bool "return edge" true
    (List.mem (Node.N_var (caller, "w")) (succs_of (Node.N_ret callee)))

let test_field_edges () =
  let g = graph_of "class A { field f: View; method m(v: View): void { this.f = v; w = this.f; } }" in
  let m = { Node.mid_cls = "A"; mid_name = "m"; mid_arity = 1 } in
  Alcotest.check Alcotest.bool "write edge" true
    (List.mem (Node.N_field "f") (List.map snd (Graph.succs g (Node.N_var (m, "v")))));
  Alcotest.check Alcotest.bool "read edge" true
    (List.mem (Node.N_var (m, "w")) (List.map snd (Graph.succs g (Node.N_field "f"))))

let test_cast_edges_config () =
  let code = "class A { method m(v: View): void { w = (Button) v; } }" in
  let app = app_of code in
  let g_filtering = Extract.run Config.default app in
  let g_plain = Extract.run { Config.default with cast_filtering = false } app in
  let m = { Node.mid_cls = "A"; mid_name = "m"; mid_arity = 1 } in
  let kinds g = List.map fst (Graph.succs g (Node.N_var (m, "v"))) in
  Alcotest.check Alcotest.bool "cast edge kind" true (kinds g_filtering = [ Graph.E_cast "Button" ]);
  Alcotest.check Alcotest.bool "plain edge kind" true (kinds g_plain = [ Graph.E_direct ])

let test_resource_constants () =
  let app =
    app_of ~layouts:[ ("main", {|<LinearLayout android:id="@+id/root" />|}) ]
      "class A extends Activity { method onCreate(): void { x = R.layout.main; y = R.id.root; } }"
  in
  let g = Extract.run Config.default app in
  let m = { Node.mid_cls = "A"; mid_name = "onCreate"; mid_arity = 0 } in
  let seed_values v =
    List.assoc_opt (Node.N_var (m, v)) (Graph.seeds g) |> Option.value ~default:Graph.VS.empty
  in
  Alcotest.check Alcotest.bool "layout id seeded" true
    (Graph.VS.exists (function Node.V_layout_id _ -> true | _ -> false) (seed_values "x"));
  Alcotest.check Alcotest.bool "view id seeded" true
    (Graph.VS.exists (function Node.V_view_id _ -> true | _ -> false) (seed_values "y"))

let test_int_constant_as_resource () =
  (* An integer literal equal to a registered resource constant is
     treated as that id (compiled-in constants). *)
  let layout = ("main", "<LinearLayout />") in
  let app =
    app_of ~layouts:[ layout ]
      (Printf.sprintf
         "class A extends Activity { method onCreate(): void { x = %d; this.setContentView(x); } }"
         Layouts.Resource.layout_base)
  in
  let g = Extract.run Config.default app in
  let m = { Node.mid_cls = "A"; mid_name = "onCreate"; mid_arity = 0 } in
  let seeds = List.assoc_opt (Node.N_var (m, "x")) (Graph.seeds g) in
  Alcotest.check Alcotest.bool "literal recognized as layout id" true
    (match seeds with
    | Some vs -> Graph.VS.mem (Node.V_layout_id Layouts.Resource.layout_base) vs
    | None -> false)

let suite =
  [
    Alcotest.test_case "op recognition" `Quick test_op_recognition;
    Alcotest.test_case "allocation sites" `Quick test_allocs_and_seeds;
    Alcotest.test_case "app override shadows API" `Quick test_app_override_shadows_api;
    Alcotest.test_case "partial override keeps op" `Quick test_partial_override_keeps_op;
    Alcotest.test_case "unknown receiver keeps op" `Quick test_unknown_receiver_gets_both;
    Alcotest.test_case "activity callback seeding" `Quick test_callback_seeding;
    Alcotest.test_case "inherited callback seeding" `Quick test_inherited_callback_seeding;
    Alcotest.test_case "call edges" `Quick test_call_edges;
    Alcotest.test_case "field edges (field-based)" `Quick test_field_edges;
    Alcotest.test_case "cast edges honor config" `Quick test_cast_edges_config;
    Alcotest.test_case "resource constant seeds" `Quick test_resource_constants;
    Alcotest.test_case "integer literal as resource id" `Quick test_int_constant_as_resource;
  ]
