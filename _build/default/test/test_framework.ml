let hierarchy src = Framework.Api.hierarchy (Jir.Parser.parse_program src)

let test_view_classes () =
  let h = hierarchy "class MyView extends SurfaceView { } class Helper { }" in
  Alcotest.check Alcotest.bool "platform view" true (Framework.Views.is_view_class h "Button");
  Alcotest.check Alcotest.bool "app view" true (Framework.Views.is_view_class h "MyView");
  Alcotest.check Alcotest.bool "helper is not" false (Framework.Views.is_view_class h "Helper");
  Alcotest.check Alcotest.bool "container" true
    (Framework.Views.is_container_class h "ViewFlipper");
  Alcotest.check Alcotest.bool "leaf not container" false
    (Framework.Views.is_container_class h "TextView")

let test_activity_and_dialog () =
  let h = hierarchy "class Main extends ListActivity { } class D extends AlertDialog { }" in
  Alcotest.check Alcotest.bool "activity subclass" true (Framework.Views.is_activity_class h "Main");
  Alcotest.check Alcotest.bool "dialog subclass" true (Framework.Views.is_dialog_class h "D");
  Alcotest.check Alcotest.bool "dialog is not activity" false
    (Framework.Views.is_activity_class h "D")

let test_concrete_lists_are_views () =
  let h = hierarchy "class X { }" in
  List.iter
    (fun c -> Alcotest.check Alcotest.bool c true (Framework.Views.is_view_class h c))
    (Framework.Views.concrete_view_classes @ Framework.Views.concrete_container_classes);
  List.iter
    (fun c -> Alcotest.check Alcotest.bool c true (Framework.Views.is_container_class h c))
    Framework.Views.concrete_container_classes

let test_listener_lookup () =
  (match Framework.Listeners.by_setter "setOnClickListener" with
  | Some i ->
      Alcotest.check Alcotest.string "iface" "OnClickListener" i.i_name;
      Alcotest.check Alcotest.bool "event" true (i.i_event = Framework.Listeners.Click)
  | None -> Alcotest.fail "setter not found");
  Alcotest.check Alcotest.bool "unknown setter" true (Framework.Listeners.by_setter "setFoo" = None)

let test_listener_classes () =
  let h =
    hierarchy
      "class L implements OnClickListener { method onClick(v: View): void { } } class M extends L { } class N { }"
  in
  Alcotest.check Alcotest.bool "direct" true (Framework.Listeners.is_listener_class h "L");
  Alcotest.check Alcotest.bool "inherited" true (Framework.Listeners.is_listener_class h "M");
  Alcotest.check Alcotest.bool "unrelated" false (Framework.Listeners.is_listener_class h "N");
  Alcotest.check Alcotest.bool "interface itself is not a listener class" false
    (Framework.Listeners.is_listener_class h "OnClickListener")

let test_handlers_have_view_param () =
  List.iter
    (fun (i : Framework.Listeners.iface) ->
      List.iter
        (fun (h : Framework.Listeners.handler) ->
          match h.h_view_param with
          | Some k ->
              if k < 0 || k >= h.h_arity then
                Alcotest.failf "%s.%s: view param %d out of range" i.i_name h.h_name k
          | None -> ())
        i.i_handlers)
    Framework.Listeners.all

let test_classify_ops () =
  let classify name arity = Framework.Api.classify ~name ~arity in
  Alcotest.check Alcotest.bool "inflate" true (classify "inflate" 1 = Some Framework.Api.Inflate);
  Alcotest.check Alcotest.bool "setContentView" true
    (classify "setContentView" 1 = Some Framework.Api.Set_content);
  Alcotest.check Alcotest.bool "addView" true (classify "addView" 1 = Some Framework.Api.Add_view);
  Alcotest.check Alcotest.bool "setId" true (classify "setId" 1 = Some Framework.Api.Set_id);
  Alcotest.check Alcotest.bool "findViewById" true
    (classify "findViewById" 1 = Some Framework.Api.Find_view);
  Alcotest.check Alcotest.bool "getCurrentView" true
    (classify "getCurrentView" 0 = Some (Framework.Api.Find_one Framework.Api.Children));
  Alcotest.check Alcotest.bool "findFocus" true
    (classify "findFocus" 0 = Some (Framework.Api.Find_one Framework.Api.Descendants));
  Alcotest.check Alcotest.bool "getParent" true (classify "getParent" 0 = Some Framework.Api.Get_parent);
  (match classify "setOnClickListener" 1 with
  | Some (Framework.Api.Set_listener i) ->
      Alcotest.check Alcotest.string "listener iface" "OnClickListener" i.i_name
  | _ -> Alcotest.fail "setter not classified");
  Alcotest.check Alcotest.bool "startActivity" true
    (classify "startActivity" 1 = Some Framework.Api.Start_activity);
  Alcotest.check Alcotest.bool "wrong arity" true (classify "setId" 2 = None);
  Alcotest.check Alcotest.bool "unknown method" true (classify "doStuff" 1 = None)

let test_return_types () =
  let rt name arity = Framework.Api.return_ty ~recv_ty:None name arity in
  Alcotest.check Alcotest.bool "findViewById returns View" true
    (rt "findViewById" 1 = Some (Jir.Ast.Tclass "View"));
  Alcotest.check Alcotest.bool "getId returns int" true (rt "getId" 0 = Some Jir.Ast.Tint);
  Alcotest.check Alcotest.bool "unknown returns none" true (rt "doStuff" 0 = None)

let test_lifecycle () =
  Alcotest.check Alcotest.bool "onCreate" true
    (Framework.Lifecycle.is_activity_callback ~name:"onCreate" ~arity:0);
  Alcotest.check Alcotest.bool "not a callback" false
    (Framework.Lifecycle.is_activity_callback ~name:"helper" ~arity:0);
  let cls =
    Option.get
      (Jir.Ast.find_class
         (Jir.Parser.parse_program
            "class A extends Activity { method onResume(): void { } method onCreate(): void { } }")
         "A")
  in
  let names = List.map (fun (m : Jir.Ast.meth) -> m.m_name) (Framework.Lifecycle.ordered_for cls) in
  Alcotest.check (Alcotest.list Alcotest.string) "canonical order" [ "onCreate"; "onResume" ] names

let test_app_of_source () =
  match
    Framework.App.of_source ~name:"T" ~code:"class A extends Activity { }"
      ~layouts:[ ("main", "<LinearLayout />") ]
  with
  | Ok app ->
      Alcotest.check Alcotest.int "activities" 1
        (List.length (Framework.App.activity_classes app));
      Alcotest.check Alcotest.bool "layout present" true
        (Layouts.Package.find app.package "main" <> None)
  | Error e -> Alcotest.failf "of_source failed: %s" e

let test_app_of_source_errors () =
  (match Framework.App.of_source ~name:"T" ~code:"banana" ~layouts:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad code accepted");
  match
    Framework.App.of_source ~name:"T" ~code:"class A { }" ~layouts:[ ("l", "<nope") ]
  with
  | Error e -> Alcotest.check Alcotest.bool "layout name in error" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "bad layout accepted"

let suite =
  [
    Alcotest.test_case "view classes" `Quick test_view_classes;
    Alcotest.test_case "activities and dialogs" `Quick test_activity_and_dialog;
    Alcotest.test_case "concrete class lists" `Quick test_concrete_lists_are_views;
    Alcotest.test_case "listener lookup" `Quick test_listener_lookup;
    Alcotest.test_case "listener classes" `Quick test_listener_classes;
    Alcotest.test_case "handler view params in range" `Quick test_handlers_have_view_param;
    Alcotest.test_case "API classification" `Quick test_classify_ops;
    Alcotest.test_case "API return types" `Quick test_return_types;
    Alcotest.test_case "lifecycle callbacks" `Quick test_lifecycle;
    Alcotest.test_case "App.of_source" `Quick test_app_of_source;
    Alcotest.test_case "App.of_source errors" `Quick test_app_of_source_errors;
  ]
