open Gator

let resources = Layouts.Resource.create ()

let layout =
  Layouts.Layout.parse_exn ~name:"l"
    {|<RelativeLayout>
        <ViewFlipper android:id="@+id/flip" />
        <LinearLayout android:id="@+id/grp"><Button android:id="@+id/ok" /></LinearLayout>
      </RelativeLayout>|}

let () = Layouts.Layout.register resources layout

let site = { Node.s_in = { Node.mid_cls = "C"; mid_name = "m"; mid_arity = 0 }; s_stmt = 3 }

let test_mints_all_nodes () =
  let g = Graph.create () in
  let views = Inflate.instantiate g ~resources ~site layout in
  Alcotest.check Alcotest.int "one abstraction per layout node" 4 (List.length views);
  Alcotest.check Alcotest.int "recorded" 4 (List.length (Graph.inflated_views g))

let test_root_first () =
  let g = Graph.create () in
  let views = Inflate.instantiate g ~resources ~site layout in
  match Inflate.root views with
  | Node.V_infl i ->
      Alcotest.check Alcotest.string "root class" "RelativeLayout" i.v_cls;
      Alcotest.check (Alcotest.list Alcotest.int) "root path" [] i.v_path
  | Node.V_alloc _ -> Alcotest.fail "root must be inflated"

let test_ids_assigned () =
  let g = Graph.create () in
  let views = Inflate.instantiate g ~resources ~site layout in
  let flip = List.nth views 1 in
  let expected = Layouts.Resource.view_id resources "flip" in
  Alcotest.check Alcotest.bool "flip id" true
    (Graph.Int_set.mem expected (Graph.ids_of_view g flip));
  Alcotest.check Alcotest.bool "root has no id" true
    (Graph.Int_set.is_empty (Graph.ids_of_view g (Inflate.root views)))

let test_edges_mirror_layout () =
  let g = Graph.create () in
  let views = Inflate.instantiate g ~resources ~site layout in
  let root = Inflate.root views in
  Alcotest.check Alcotest.int "root children" 2 (Graph.View_set.cardinal (Graph.children_of g root));
  Alcotest.check Alcotest.int "all descendants" 4
    (Graph.View_set.cardinal (Graph.descendants g ~include_self:true root))

let test_memoized () =
  let g = Graph.create () in
  let a = Inflate.instantiate g ~resources ~site layout in
  let b = Inflate.instantiate g ~resources ~site layout in
  Alcotest.check Alcotest.bool "same list" true (a == b || a = b);
  Alcotest.check Alcotest.int "no duplicates" 4 (List.length (Graph.inflated_views g))

let test_distinct_sites_distinct_views () =
  let g = Graph.create () in
  let other_site = { site with Node.s_stmt = 9 } in
  let a = Inflate.instantiate g ~resources ~site layout in
  let b = Inflate.instantiate g ~resources ~site:other_site layout in
  Alcotest.check Alcotest.bool "fresh abstractions per site" true (List.for_all2 ( <> ) a b);
  Alcotest.check Alcotest.int "both recorded" 8 (List.length (Graph.inflated_views g))

let test_root_of_empty () =
  Alcotest.check_raises "empty inflation" (Invalid_argument "Inflate.root: empty inflation")
    (fun () -> ignore (Inflate.root []))

let suite =
  [
    Alcotest.test_case "mints one view per node" `Quick test_mints_all_nodes;
    Alcotest.test_case "root is first" `Quick test_root_first;
    Alcotest.test_case "ids assigned from resources" `Quick test_ids_assigned;
    Alcotest.test_case "parent-child mirrors layout" `Quick test_edges_mirror_layout;
    Alcotest.test_case "memoized per (site, layout)" `Quick test_memoized;
    Alcotest.test_case "distinct sites mint fresh views" `Quick test_distinct_sites_distinct_views;
    Alcotest.test_case "root of empty rejected" `Quick test_root_of_empty;
  ]
