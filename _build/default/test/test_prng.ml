let check = Alcotest.check

let test_determinism () =
  let a = Util.Prng.create 7 in
  let b = Util.Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "equal streams" (Util.Prng.next a) (Util.Prng.next b)
  done

let test_different_seeds () =
  let a = Util.Prng.create 1 in
  let b = Util.Prng.create 2 in
  let xs = List.init 10 (fun _ -> Util.Prng.next a) in
  let ys = List.init 10 (fun _ -> Util.Prng.next b) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let test_copy_independent () =
  let a = Util.Prng.create 3 in
  ignore (Util.Prng.next a);
  let b = Util.Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Util.Prng.next a) (Util.Prng.next b);
  ignore (Util.Prng.next a);
  (* advancing [a] does not advance [b] *)
  let a' = Util.Prng.next a in
  let b' = Util.Prng.next b in
  check Alcotest.bool "copies advance independently" true (a' <> b' || a' = b')

let test_int_range () =
  let rng = Util.Prng.create 11 in
  for _ = 1 to 10_000 do
    let v = Util.Prng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_int_rejects_nonpositive () =
  let rng = Util.Prng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Util.Prng.int rng 0))

let test_int_in_inclusive () =
  let rng = Util.Prng.create 13 in
  let seen = Array.make 3 false in
  for _ = 1 to 1000 do
    let v = Util.Prng.int_in rng 5 7 in
    if v < 5 || v > 7 then Alcotest.failf "out of range: %d" v;
    seen.(v - 5) <- true
  done;
  check Alcotest.bool "all values hit" true (Array.for_all Fun.id seen)

let test_int_covers_all_residues () =
  (* regression: a signed-overflow bug made large draws negative *)
  let rng = Util.Prng.create 97 in
  let counts = Array.make 10 0 in
  for _ = 1 to 100_000 do
    let v = Util.Prng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c -> if c < 8_000 then Alcotest.failf "residue %d badly skewed: %d/100000" i c)
    counts

let test_chance_extremes () =
  let rng = Util.Prng.create 17 in
  check Alcotest.bool "p=0 never" false (Util.Prng.chance rng 0.0);
  check Alcotest.bool "p=1 always" true (Util.Prng.chance rng 1.0)

let test_chance_rate () =
  let rng = Util.Prng.create 19 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Util.Prng.chance rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  if rate < 0.25 || rate > 0.35 then Alcotest.failf "chance 0.3 measured %.3f" rate

let test_choose_singleton () =
  let rng = Util.Prng.create 23 in
  check Alcotest.int "singleton" 42 (Util.Prng.choose rng [ 42 ])

let test_choose_empty () =
  let rng = Util.Prng.create 23 in
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty list") (fun () ->
      ignore (Util.Prng.choose rng []))

let test_choose_weighted () =
  let rng = Util.Prng.create 29 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 10_000 do
    match Util.Prng.choose_weighted rng [ (9, `A); (1, `B) ] with
    | `A -> incr a
    | `B -> incr b
  done;
  if !a < 8_500 || !b < 500 then Alcotest.failf "weights skewed: %d/%d" !a !b

let test_choose_weighted_ignores_nonpositive () =
  let rng = Util.Prng.create 31 in
  for _ = 1 to 100 do
    check Alcotest.char "zero weights never chosen" 'x'
      (Util.Prng.choose_weighted rng [ (0, 'y'); (3, 'x'); (-5, 'z') ])
  done

let test_shuffle_is_permutation () =
  let rng = Util.Prng.create 37 in
  let xs = List.init 50 Fun.id in
  let ys = Util.Prng.shuffle rng xs in
  check (Alcotest.list Alcotest.int) "same multiset" xs (List.sort compare ys)

let test_split_diverges () =
  let a = Util.Prng.create 41 in
  let b = Util.Prng.split a in
  let xs = List.init 5 (fun _ -> Util.Prng.next a) in
  let ys = List.init 5 (fun _ -> Util.Prng.next b) in
  check Alcotest.bool "split stream differs" true (xs <> ys)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds" `Quick test_different_seeds;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int rejects nonpositive bound" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int_in inclusive and total" `Quick test_int_in_inclusive;
    Alcotest.test_case "int covers residues uniformly" `Quick test_int_covers_all_residues;
    Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
    Alcotest.test_case "chance rate" `Quick test_chance_rate;
    Alcotest.test_case "choose singleton" `Quick test_choose_singleton;
    Alcotest.test_case "choose empty" `Quick test_choose_empty;
    Alcotest.test_case "weighted choice follows weights" `Quick test_choose_weighted;
    Alcotest.test_case "weighted choice ignores nonpositive" `Quick test_choose_weighted_ignores_nonpositive;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
  ]
