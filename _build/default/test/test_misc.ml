(* Cross-cutting smaller behaviors not covered by the focused suites. *)

let app_of ?(layouts = []) code =
  match Framework.App.of_source ~name:"T" ~code ~layouts with
  | Ok app -> app
  | Error e -> Alcotest.failf "app_of: %s" e

(* ---------------- interpreter options ---------------- *)

let listener_app () =
  app_of
    {|class A extends Activity {
        method onCreate(): void {
          b = new Button();
          this.setContentView(b);
          j = new L();
          b.setOnClickListener(j);
        } }
      class L implements OnClickListener { method onClick(v: View): void { } }|}

let test_zero_event_rounds () =
  let options = { Dynamic.Interp.default_options with event_rounds = 0 } in
  let outcome = Dynamic.Interp.run ~options (listener_app ()) in
  Alcotest.check Alcotest.int "no firings" 0 (List.length outcome.firings);
  Alcotest.check Alcotest.int "registration still happened" 1 (List.length outcome.registrations)

let test_more_rounds_fire_more () =
  let run n =
    let options = { Dynamic.Interp.default_options with event_rounds = n } in
    List.length (Dynamic.Interp.run ~options (listener_app ())).firings
  in
  Alcotest.check Alcotest.int "1 round" 1 (run 1);
  Alcotest.check Alcotest.int "4 rounds" 4 (run 4)

let test_depth_zero_truncates_calls () =
  let options = { Dynamic.Interp.default_options with max_depth = 0 } in
  let outcome =
    Dynamic.Interp.run ~options
      (app_of
         {|class A extends Activity {
             method onCreate(): void { this.helper(); }
             method helper(): void { b = new Button(); i = 5; b.setId(i); } }|})
  in
  Alcotest.check Alcotest.bool "nested call truncated" true outcome.truncated

(* ---------------- dialog interactions ---------------- *)

let test_dialog_interaction_tuple () =
  let app =
    app_of
      {|class A extends Activity { method onCreate(): void { d = new D(); } }
        class D extends Dialog {
          method onCreate(): void {
            b = new Button();
            this.setContentView(b);
            j = new L();
            b.setOnClickListener(j);
          } }
        class L implements OnClickListener { method onClick(v: View): void { } }|}
  in
  let r = Gator.Analysis.analyze app in
  match Gator.Analysis.interactions r with
  | [ ix ] ->
      Alcotest.check Alcotest.string "labeled by dialog class" "D" ix.ix_activity;
      (* and the dynamic firing of it is covered *)
      let outcome = Dynamic.Interp.run app in
      Alcotest.check Alcotest.bool "covered" true
        (Dynamic.Oracle.is_sound (Dynamic.Oracle.check r outcome));
      Alcotest.check Alcotest.bool "dialog firing attributed" true
        (List.exists
           (fun (f : Dynamic.Interp.firing) -> List.mem "D" f.f_activities)
           outcome.firings)
  | other -> Alcotest.failf "expected one tuple, got %d" (List.length other)

(* ---------------- hierarchy/typing corners ---------------- *)

let test_field_shadowing () =
  let h =
    Framework.Api.hierarchy
      (Jir.Parser.parse_program
         "class A { field f: View; } class B extends A { field f: Button; }")
  in
  Alcotest.check Alcotest.bool "subclass field wins" true
    (Jir.Hierarchy.field_ty h "B" "f" = Some (Jir.Ast.Tclass "Button"));
  Alcotest.check Alcotest.bool "superclass unaffected" true
    (Jir.Hierarchy.field_ty h "A" "f" = Some (Jir.Ast.Tclass "View"))

let test_fragment_manager_typing () =
  let program =
    Jir.Parser.parse_program
      "class A extends Activity { method m(): void { fm = this.getFragmentManager(); ft = fm.beginTransaction(); } }"
  in
  let h = Framework.Api.hierarchy program in
  let cls = Option.get (Jir.Ast.find_class program "A") in
  let m = List.hd cls.c_methods in
  let env = Jir.Typing.infer ~hierarchy:h ~external_return:Framework.Api.return_ty ~owner:"A" m in
  Alcotest.check Alcotest.(option string) "fm" (Some "FragmentManager") (Jir.Typing.class_of env "fm");
  Alcotest.check Alcotest.(option string) "ft" (Some "FragmentTransaction")
    (Jir.Typing.class_of env "ft")

(* ---------------- graph relations ---------------- *)

let test_transitions_relation () =
  let g = Gator.Graph.create () in
  Alcotest.check Alcotest.bool "first" true (Gator.Graph.add_transition g ~from_:"A" ~to_:"B");
  Alcotest.check Alcotest.bool "dup" false (Gator.Graph.add_transition g ~from_:"A" ~to_:"B");
  Alcotest.check Alcotest.int "one edge" 1 (List.length (Gator.Graph.transitions g));
  Gator.Graph.reset_sets g;
  Alcotest.check Alcotest.int "reset clears" 0 (List.length (Gator.Graph.transitions g))

let test_root_layout_relation () =
  let g = Gator.Graph.create () in
  let v =
    Gator.Node.V_alloc
      {
        Gator.Node.a_site =
          { s_in = { mid_cls = "C"; mid_name = "m"; mid_arity = 0 }; s_stmt = 0 };
        a_cls = "Button";
      }
  in
  ignore (Gator.Graph.add_root_layout g v 42);
  Alcotest.check Alcotest.bool "recorded" true
    (Gator.Graph.Int_set.mem 42 (Gator.Graph.layouts_of_root g v))

(* ---------------- analysis misc ---------------- *)

let test_flows_to () =
  let app =
    app_of "class A extends Activity { method onCreate(): void { x = new Button(); y = x; } }"
  in
  let r = Gator.Analysis.analyze app in
  let y = Gator.Analysis.var ~cls:"A" ~meth:"onCreate" ~arity:0 "y" in
  match Gator.Analysis.values_at r y with
  | [ value ] ->
      Alcotest.check Alcotest.bool "flows_to" true (Gator.Analysis.flows_to r value y);
      Alcotest.check Alcotest.bool "not elsewhere" false
        (Gator.Analysis.flows_to r value
           (Gator.Analysis.var ~cls:"A" ~meth:"onCreate" ~arity:0 "zzz"))
  | _ -> Alcotest.fail "expected one value"

let test_ops_of_kind () =
  let r = Gator.Analysis.analyze (Corpus.Connectbot.app ()) in
  let finds =
    Gator.Analysis.ops_of_kind r (function Framework.Api.Find_view -> true | _ -> false)
  in
  Alcotest.check Alcotest.int "three findViewById ops" 3 (List.length finds)

let test_pp_smoke () =
  let r = Gator.Analysis.analyze (Corpus.Connectbot.app ()) in
  let text = Fmt.str "%a" Gator.Analysis.pp_summary r in
  Alcotest.check Alcotest.bool "summary mentions app" true (String.length text > 20);
  List.iter
    (fun (op : Gator.Graph.op) ->
      let s = Fmt.str "%a" Gator.Node.pp_op_site op.site in
      Alcotest.check Alcotest.bool "op site printable" true (String.length s > 0))
    (Gator.Analysis.ops r)

(* ---------------- table alignment ---------------- *)

let test_table_aligns () =
  let out =
    Report.Table.render
      ~aligns:[ Report.Table.Left; Report.Table.Left ]
      ~header:[ "a"; "b" ]
      [ [ "x"; "yyy" ]; [ "xx"; "y" ] ]
  in
  Alcotest.check Alcotest.bool "left-aligned" true (String.length out > 0)

let suite =
  [
    Alcotest.test_case "zero event rounds" `Quick test_zero_event_rounds;
    Alcotest.test_case "firings scale with rounds" `Quick test_more_rounds_fire_more;
    Alcotest.test_case "depth zero truncates" `Quick test_depth_zero_truncates_calls;
    Alcotest.test_case "dialog interaction tuples" `Quick test_dialog_interaction_tuple;
    Alcotest.test_case "field shadowing" `Quick test_field_shadowing;
    Alcotest.test_case "fragment manager typing" `Quick test_fragment_manager_typing;
    Alcotest.test_case "transitions relation" `Quick test_transitions_relation;
    Alcotest.test_case "root layout relation" `Quick test_root_layout_relation;
    Alcotest.test_case "flows_to" `Quick test_flows_to;
    Alcotest.test_case "ops_of_kind" `Quick test_ops_of_kind;
    Alcotest.test_case "pretty-printer smoke" `Quick test_pp_smoke;
    Alcotest.test_case "table custom alignment" `Quick test_table_aligns;
  ]
