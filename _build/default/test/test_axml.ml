let parse_ok src =
  match Axml.parse src with Ok t -> t | Error e -> Alcotest.failf "parse failed: %s" e

let test_self_closing () =
  let t = parse_ok "<Button />" in
  Alcotest.check Alcotest.string "tag" "Button" t.Axml.tag;
  Alcotest.check Alcotest.int "no children" 0 (List.length t.Axml.children)

let test_attributes () =
  let t = parse_ok {|<Button android:id="@+id/ok" text='hi' />|} in
  Alcotest.check Alcotest.(option string) "id attr" (Some "@+id/ok") (Axml.attr t "android:id");
  Alcotest.check Alcotest.(option string) "single-quoted" (Some "hi") (Axml.attr t "text");
  Alcotest.check Alcotest.(option string) "absent" None (Axml.attr t "nope")

let test_nesting () =
  let t = parse_ok "<A><B><C /></B><D /></A>" in
  match t.Axml.children with
  | [ b; d ] ->
      Alcotest.check Alcotest.string "b" "B" b.Axml.tag;
      Alcotest.check Alcotest.string "d" "D" d.Axml.tag;
      Alcotest.check Alcotest.int "c nested" 1 (List.length b.Axml.children)
  | _ -> Alcotest.fail "expected two children"

let test_declaration_and_comments () =
  let t = parse_ok "<?xml version=\"1.0\"?>\n<!-- top --><A><!-- inner --><B /></A>" in
  Alcotest.check Alcotest.int "comment skipped" 1 (List.length t.Axml.children)

let test_text_ignored () =
  let t = parse_ok "<A>some text<B />more</A>" in
  Alcotest.check Alcotest.int "text skipped" 1 (List.length t.Axml.children)

let test_entities () =
  let t = parse_ok {|<A v="a&amp;b&lt;c&gt;d&quot;e&apos;f" />|} in
  Alcotest.check Alcotest.(option string) "decoded" (Some "a&b<c>d\"e'f") (Axml.attr t "v")

let expect_error msg src =
  match Axml.parse src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected an error" msg

let test_errors () =
  expect_error "mismatched close" "<A></B>";
  expect_error "unterminated" "<A><B />";
  expect_error "trailing" "<A /><B />";
  expect_error "bad entity" {|<A v="&bogus;" />|};
  expect_error "unquoted attr" "<A v=3 />";
  expect_error "empty input" "   "

let test_error_position () =
  match Axml.parse "<A>\n  <B>\n</A>" with
  | Error msg -> Alcotest.check Alcotest.bool "has position" true (String.contains msg ':')
  | Ok _ -> Alcotest.fail "expected error"

let test_pp_roundtrip_manual () =
  let t =
    Axml.element "A"
      ~attrs:[ ("x", "1 & 2"); ("y", "<z>") ]
      ~children:[ Axml.element "B"; Axml.element "C" ~children:[ Axml.element "D" ] ]
  in
  let t' = parse_ok (Axml.to_string t) in
  Alcotest.check Alcotest.bool "roundtrip" true (Axml.equal t t')

let xml_gen =
  let open QCheck.Gen in
  let tag = map (Printf.sprintf "Tag%d") (int_range 0 9) in
  let attr = pair (map (Printf.sprintf "attr%d") (int_range 0 5)) (string_size ~gen:printable (0 -- 10)) in
  let dedup_attrs attrs =
    let seen = Hashtbl.create 4 in
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      attrs
  in
  fix
    (fun self depth ->
      let node =
        map3
          (fun tag attrs children -> Axml.element tag ~attrs:(dedup_attrs attrs) ~children)
          tag (list_size (0 -- 3) attr)
          (if depth = 0 then return [] else list_size (0 -- 3) (self (depth - 1)))
      in
      node)
    2

let qcheck_roundtrip =
  QCheck.Test.make ~name:"xml print/parse roundtrip" ~count:300
    (QCheck.make ~print:Axml.to_string xml_gen)
    (fun t ->
      match Axml.parse (Axml.to_string t) with
      | Ok t' -> Axml.equal t t'
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

let suite =
  [
    Alcotest.test_case "self closing" `Quick test_self_closing;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "nesting" `Quick test_nesting;
    Alcotest.test_case "xml declaration and comments" `Quick test_declaration_and_comments;
    Alcotest.test_case "text content ignored" `Quick test_text_ignored;
    Alcotest.test_case "entities" `Quick test_entities;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "error positions" `Quick test_error_position;
    Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip_manual;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
