open Gator

let test_avg_empty () = Alcotest.check Alcotest.bool "none" true (Metrics.avg [] = None)

let test_avg_skips_empty_sets () =
  Alcotest.check Alcotest.(option (float 0.001)) "zeros skipped" (Some 2.0)
    (Metrics.avg [ 0; 2; 0; 2 ])

let test_avg_all_zero () =
  Alcotest.check Alcotest.bool "all-zero is none" true (Metrics.avg [ 0; 0 ] = None)

let test_avg_mean () =
  Alcotest.check Alcotest.(option (float 0.001)) "mean" (Some 2.0) (Metrics.avg [ 1; 2; 3 ])

let analysis () = Analysis.analyze (Corpus.Connectbot.app ())

let test_table1_connectbot () =
  let t = Metrics.table1 (analysis ()) in
  Alcotest.check Alcotest.int "classes" 3 t.t1_classes;
  Alcotest.check Alcotest.int "methods" 5 t.t1_methods;
  Alcotest.check Alcotest.int "layouts" 2 t.t1_layout_ids;
  (* act_console: console_flip, keyboard_group, button_esc, button_ctrl,
     button_up, button_down; item_terminal: terminal_overlay *)
  Alcotest.check Alcotest.int "view ids" 7 t.t1_view_ids;
  (* 7 act_console nodes + 2 item_terminal nodes *)
  Alcotest.check Alcotest.int "inflated" 9 t.t1_views_inflated;
  Alcotest.check Alcotest.int "allocated views" 1 t.t1_views_allocated;
  Alcotest.check Alcotest.int "listeners" 1 t.t1_listeners;
  Alcotest.check Alcotest.int "activities" 1 t.t1_activities;
  Alcotest.check Alcotest.int "inflate ops" 2 t.t1_inflate_ops;
  (* findViewById x3 (lines 10/13 + helper) + getCurrentView *)
  Alcotest.check Alcotest.int "findview ops" 4 t.t1_findview_ops;
  Alcotest.check Alcotest.int "addview ops" 2 t.t1_addview_ops;
  Alcotest.check Alcotest.int "setid ops" 1 t.t1_setid_ops;
  Alcotest.check Alcotest.int "setlistener ops" 1 t.t1_setlistener_ops

let test_table2_connectbot () =
  let t = Metrics.table2 (analysis ()) in
  let value = function Some v -> v | None -> Alcotest.fail "expected a value" in
  Alcotest.check Alcotest.bool "receivers near 1" true (value t.t2_receivers < 1.5);
  Alcotest.check Alcotest.bool "parameters 1" true (value t.t2_parameters = 1.0);
  Alcotest.check Alcotest.bool "results small" true (value t.t2_results <= 2.0);
  Alcotest.check Alcotest.bool "listeners 1" true (value t.t2_listeners = 1.0);
  Alcotest.check Alcotest.bool "time nonneg" true (t.t2_seconds >= 0.0)

let test_table2_dashes () =
  (* no AddView / SetListener ops: the paper prints "-" *)
  let r =
    match
      Framework.App.of_source ~name:"T"
        ~code:"class A extends Activity { method onCreate(): void { } }" ~layouts:[]
    with
    | Ok app -> Analysis.analyze app
    | Error e -> Alcotest.fail e
  in
  let t = Metrics.table2 r in
  Alcotest.check Alcotest.bool "parameters dash" true (t.t2_parameters = None);
  Alcotest.check Alcotest.bool "listeners dash" true (t.t2_listeners = None);
  Alcotest.check Alcotest.bool "receivers dash" true (t.t2_receivers = None)

let suite =
  [
    Alcotest.test_case "avg of empty" `Quick test_avg_empty;
    Alcotest.test_case "avg skips empty sets" `Quick test_avg_skips_empty_sets;
    Alcotest.test_case "avg of all-zero" `Quick test_avg_all_zero;
    Alcotest.test_case "avg mean" `Quick test_avg_mean;
    Alcotest.test_case "Table 1 on Figure 1" `Quick test_table1_connectbot;
    Alcotest.test_case "Table 2 on Figure 1" `Quick test_table2_connectbot;
    Alcotest.test_case "Table 2 dashes" `Quick test_table2_dashes;
  ]
