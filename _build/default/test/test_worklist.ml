let test_fifo () =
  let w = Util.Worklist.create () in
  Util.Worklist.add_all w [ 1; 2; 3 ];
  Alcotest.check Alcotest.(option int) "first" (Some 1) (Util.Worklist.pop w);
  Alcotest.check Alcotest.(option int) "second" (Some 2) (Util.Worklist.pop w);
  Alcotest.check Alcotest.(option int) "third" (Some 3) (Util.Worklist.pop w);
  Alcotest.check Alcotest.(option int) "empty" None (Util.Worklist.pop w)

let test_dedup () =
  let w = Util.Worklist.create () in
  Util.Worklist.add w 5;
  Util.Worklist.add w 5;
  Alcotest.check Alcotest.int "one pending" 1 (Util.Worklist.length w);
  ignore (Util.Worklist.pop w);
  (* once popped, the element may be re-added *)
  Util.Worklist.add w 5;
  Alcotest.check Alcotest.int "re-addable after pop" 1 (Util.Worklist.length w)

let test_is_empty () =
  let w = Util.Worklist.create () in
  Alcotest.check Alcotest.bool "fresh empty" true (Util.Worklist.is_empty w);
  Util.Worklist.add w 0;
  Alcotest.check Alcotest.bool "non-empty" false (Util.Worklist.is_empty w)

let test_drain_with_additions () =
  let w = Util.Worklist.create () in
  Util.Worklist.add w 0;
  let seen = ref [] in
  Util.Worklist.drain w (fun x ->
      seen := x :: !seen;
      if x < 5 then Util.Worklist.add w (x + 1));
  Alcotest.check (Alcotest.list Alcotest.int) "drained transitively" [ 0; 1; 2; 3; 4; 5 ]
    (List.rev !seen);
  Alcotest.check Alcotest.bool "empty after drain" true (Util.Worklist.is_empty w)

let test_structural_keys () =
  let w = Util.Worklist.create () in
  Util.Worklist.add w (1, "a");
  Util.Worklist.add w (1, "a");
  Util.Worklist.add w (1, "b");
  Alcotest.check Alcotest.int "structural dedup" 2 (Util.Worklist.length w)

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo;
    Alcotest.test_case "dedup while pending" `Quick test_dedup;
    Alcotest.test_case "is_empty" `Quick test_is_empty;
    Alcotest.test_case "drain with additions" `Quick test_drain_with_additions;
    Alcotest.test_case "structural keys" `Quick test_structural_keys;
  ]
