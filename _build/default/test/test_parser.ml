open Jir

let parse = Parser.parse_program

let stmt_testable = Alcotest.testable Ast.pp_stmt Ast.equal_stmt

let parse_body src =
  let program = parse (Printf.sprintf "class C { method m(): void { %s } }" src) in
  match program.p_classes with
  | [ { c_methods = [ m ]; _ } ] -> m.m_body
  | _ -> Alcotest.fail "unexpected program shape"

let check_stmts msg expected src =
  Alcotest.check (Alcotest.list stmt_testable) msg expected (parse_body src)

let test_new () = check_stmts "new" [ Ast.New ("x", "Button") ] "x = new Button();"

let test_copy () = check_stmts "copy" [ Ast.Copy ("x", "y") ] "x = y;"

let test_field_read () = check_stmts "read" [ Ast.Read_field ("x", "y", "f") ] "x = y.f;"

let test_field_write () = check_stmts "write" [ Ast.Write_field ("x", "f", "y") ] "x.f = y;"

let test_layout_id () =
  check_stmts "layout id" [ Ast.Read_layout_id ("x", "main") ] "x = R.layout.main;"

let test_view_id () = check_stmts "view id" [ Ast.Read_view_id ("x", "btn") ] "x = R.id.btn;"

let test_const_int () = check_stmts "int" [ Ast.Const_int ("x", 7) ] "x = 7;"

let test_const_null () = check_stmts "null" [ Ast.Const_null "x" ] "x = null;"

let test_cast () = check_stmts "cast" [ Ast.Cast ("x", "Button", "y") ] "x = (Button) y;"

let test_invoke_with_lhs () =
  check_stmts "invoke lhs"
    [ Ast.Invoke (Some "z", "x", "m", [ "a"; "b" ]) ]
    "z = x.m(a, b);"

let test_invoke_no_lhs () =
  check_stmts "invoke void" [ Ast.Invoke (None, "x", "m", []) ] "x.m();"

let test_returns () =
  check_stmts "returns" [ Ast.Return (Some "x") ] "return x;";
  check_stmts "bare return" [ Ast.Return None ] "return;"

let test_class_header () =
  let program =
    parse "class A extends B implements I, J { field f: int; field g: A; }"
  in
  match program.p_classes with
  | [ c ] ->
      Alcotest.check Alcotest.string "name" "A" c.c_name;
      Alcotest.check Alcotest.(option string) "super" (Some "B") c.c_super;
      Alcotest.check Alcotest.(list string) "interfaces" [ "I"; "J" ] c.c_interfaces;
      Alcotest.check Alcotest.int "fields" 2 (List.length c.c_fields);
      Alcotest.check Alcotest.bool "field type" true
        (List.assoc "g" c.c_fields = Ast.Tclass "A")
  | _ -> Alcotest.fail "expected one class"

let test_interface () =
  let program = parse "interface I { method m(x: View): void { } }" in
  match program.p_classes with
  | [ c ] -> Alcotest.check Alcotest.bool "kind" true (c.c_kind = `Interface)
  | _ -> Alcotest.fail "expected one interface"

let test_locals_and_params () =
  let program =
    parse "class C { method m(a: int, b: View): View { var t: Button; return b; } }"
  in
  match program.p_classes with
  | [ { c_methods = [ m ]; _ } ] ->
      Alcotest.check Alcotest.int "params" 2 (List.length m.m_params);
      Alcotest.check Alcotest.int "locals" 1 (List.length m.m_locals);
      Alcotest.check Alcotest.bool "ret" true (m.m_ret = Some (Ast.Tclass "View"))
  | _ -> Alcotest.fail "unexpected shape"

let test_void_ret () =
  let program = parse "class C { method m() { } method n(): void { } }" in
  match program.p_classes with
  | [ { c_methods = [ m; n ]; _ } ] ->
      Alcotest.check Alcotest.bool "implicit void" true (m.m_ret = None);
      Alcotest.check Alcotest.bool "explicit void" true (n.m_ret = None)
  | _ -> Alcotest.fail "unexpected shape"

let expect_error msg src =
  match Parser.parse_program_result src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a parse error" msg

let test_errors () =
  expect_error "missing semicolon" "class C { method m(): void { x = y } }";
  expect_error "bad resource category" "class C { method m(): void { x = R.string.a; } }";
  expect_error "stray token" "class C { method m(): void { 42; } }";
  expect_error "unterminated class" "class C { method m(): void { }";
  expect_error "toplevel junk" "banana";
  expect_error "void as param type" "class C { method m(x: void): void { } }"

let test_error_position () =
  match Parser.parse_program_result "class C {\n  banana\n}" with
  | Error msg -> Alcotest.check Alcotest.bool "position in message" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected error"

let test_r_misuse () =
  expect_error "bare R" "class C { method m(): void { x = R; } }";
  expect_error "R without field" "class C { method m(): void { x = R.layout; } }"

let test_comments_everywhere () =
  let program =
    parse
      "// top\nclass C { /* fields */ field f: int; // trailing\n method m(): void { /* body */ x = 1; } }"
  in
  Alcotest.check Alcotest.int "parsed through comments" 1 (List.length program.p_classes)

let test_hex_resource_int () =
  check_stmts "hex literal" [ Ast.Const_int ("x", 0x7f030001) ] "x = 0x7f030001;"

let test_multiple_classes () =
  let program = parse "class A { } class B extends A { } interface I { }" in
  Alcotest.check Alcotest.int "three types" 3 (List.length program.p_classes)

let suite =
  [
    Alcotest.test_case "new" `Quick test_new;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "field read" `Quick test_field_read;
    Alcotest.test_case "field write" `Quick test_field_write;
    Alcotest.test_case "layout id read" `Quick test_layout_id;
    Alcotest.test_case "view id read" `Quick test_view_id;
    Alcotest.test_case "int constant" `Quick test_const_int;
    Alcotest.test_case "null constant" `Quick test_const_null;
    Alcotest.test_case "cast" `Quick test_cast;
    Alcotest.test_case "invoke with lhs" `Quick test_invoke_with_lhs;
    Alcotest.test_case "invoke without lhs" `Quick test_invoke_no_lhs;
    Alcotest.test_case "returns" `Quick test_returns;
    Alcotest.test_case "class header" `Quick test_class_header;
    Alcotest.test_case "interface" `Quick test_interface;
    Alcotest.test_case "locals and params" `Quick test_locals_and_params;
    Alcotest.test_case "void return forms" `Quick test_void_ret;
    Alcotest.test_case "syntax errors rejected" `Quick test_errors;
    Alcotest.test_case "error message carries position" `Quick test_error_position;
    Alcotest.test_case "multiple classes" `Quick test_multiple_classes;
    Alcotest.test_case "R misuse rejected" `Quick test_r_misuse;
    Alcotest.test_case "comments everywhere" `Quick test_comments_everywhere;
    Alcotest.test_case "hex integer literal" `Quick test_hex_resource_int;
  ]
