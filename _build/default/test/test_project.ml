(* Project-directory loading and solution diffing. *)

let with_temp_dir f =
  let dir = Filename.temp_file "gator_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
      in
      rm dir)
    (fun () -> f dir)

let write path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let scaffold dir =
  Unix.mkdir (Filename.concat dir "src") 0o755;
  Unix.mkdir (Filename.concat dir "res") 0o755;
  Unix.mkdir (Filename.concat dir "res/layout") 0o755;
  write
    (Filename.concat dir "src/main.alite")
    {|class Main extends Activity {
        method onCreate(): void {
          l = R.layout.screen;
          this.setContentView(l);
          a = R.id.ok;
          v = this.findViewById(a);
          j = new L();
          v.setOnClickListener(j);
        } }|};
  write
    (Filename.concat dir "src/listener.alite")
    {|class L implements OnClickListener { method onClick(v: View): void { } }|};
  write
    (Filename.concat dir "res/layout/screen.xml")
    {|<LinearLayout><Button android:id="@+id/ok" /></LinearLayout>|}

let test_load_project_layout () =
  with_temp_dir (fun dir ->
      scaffold dir;
      match Project.load dir with
      | Error e -> Alcotest.fail e
      | Ok app ->
          Alcotest.check Alcotest.int "classes from both files" 2
            (List.length app.program.p_classes);
          Alcotest.check Alcotest.bool "layout loaded" true
            (Layouts.Package.find app.package "screen" <> None);
          let r = Gator.Analysis.analyze app in
          Alcotest.check Alcotest.int "interaction derived" 1
            (List.length (Gator.Analysis.interactions r)))

let test_load_flat_layout () =
  with_temp_dir (fun dir ->
      write (Filename.concat dir "app.alite") "class A extends Activity { }";
      write (Filename.concat dir "main.xml") "<LinearLayout />";
      match Project.load dir with
      | Error e -> Alcotest.fail e
      | Ok app ->
          Alcotest.check Alcotest.int "one class" 1 (List.length app.program.p_classes);
          Alcotest.check Alcotest.bool "flat layout" true
            (Layouts.Package.find app.package "main" <> None))

let test_load_errors () =
  (match Project.load "/nonexistent/dir" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing dir accepted");
  with_temp_dir (fun dir ->
      match Project.load dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "empty dir accepted")

let test_parse_error_propagates () =
  with_temp_dir (fun dir ->
      write (Filename.concat dir "bad.alite") "banana";
      match Project.load dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad source accepted")

(* ------------- diff ------------- *)

let analyze ?config code =
  match Framework.App.of_source ~name:"T" ~code ~layouts:[] with
  | Ok app -> Gator.Analysis.analyze ?config app
  | Error e -> Alcotest.fail e

let diff_code =
  {|class A extends Activity {
      field f: View;
      method onCreate(): void {
        x = new Button();
        this.f = x;
        y = new LinearLayout();
        this.f = y;
        u = this.f;
        w = (Button) u;
        i = 5;
        w.setId(i);
      } }|}

let test_diff_identity () =
  let a = analyze diff_code in
  let b = analyze diff_code in
  let d = Gator.Diff.compare a b in
  Alcotest.check Alcotest.bool "no differences" true (Gator.Diff.is_empty d)

let test_diff_configs () =
  let refined = analyze diff_code in
  let loose = analyze ~config:{ Gator.Config.default with cast_filtering = false } diff_code in
  let d = Gator.Diff.compare refined loose in
  Alcotest.check Alcotest.bool "differences found" false (Gator.Diff.is_empty d);
  (* the loose side has strictly more receivers at the setId op *)
  match d.d_changed with
  | [ change ] ->
      Alcotest.check Alcotest.string "role" "receivers" change.oc_role;
      Alcotest.check Alcotest.int "nothing lost" 0 change.oc_only_left;
      Alcotest.check Alcotest.int "one extra receiver" 1 change.oc_only_right
  | other -> Alcotest.failf "expected one change, got %d" (List.length other)

let test_diff_code_edit () =
  let before = analyze "class A extends Activity { method onCreate(): void { v = new Button(); i = 5; v.setId(i); } }" in
  let after = analyze "class A extends Activity { method onCreate(): void { v = new Button(); } }" in
  let d = Gator.Diff.compare before after in
  Alcotest.check Alcotest.int "op disappeared" 1 (List.length d.d_ops_only_left);
  Alcotest.check Alcotest.int "none added" 0 (List.length d.d_ops_only_right)

let test_diff_pp () =
  let a = analyze diff_code in
  let loose = analyze ~config:Gator.Config.baseline diff_code in
  let text = Fmt.str "%a" Gator.Diff.pp (Gator.Diff.compare a loose) in
  Alcotest.check Alcotest.bool "mentions diff" true (String.length text > 10)

let suite =
  [
    Alcotest.test_case "load src/res project" `Quick test_load_project_layout;
    Alcotest.test_case "load flat directory" `Quick test_load_flat_layout;
    Alcotest.test_case "load errors" `Quick test_load_errors;
    Alcotest.test_case "parse errors propagate" `Quick test_parse_error_propagates;
    Alcotest.test_case "diff: identity" `Quick test_diff_identity;
    Alcotest.test_case "diff: config changes" `Quick test_diff_configs;
    Alcotest.test_case "diff: code edits" `Quick test_diff_code_edit;
    Alcotest.test_case "diff: rendering" `Quick test_diff_pp;
  ]
