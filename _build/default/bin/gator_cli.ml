(* Command-line frontend: analyze an ALite program with XML layouts and
   print the computed GUI model. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let layout_name_of_path path = Filename.remove_extension (Filename.basename path)

let run code_path layout_paths dump_dot show_interactions show_diagnostics run_dynamic json =
  let loaded =
    if Sys.is_directory code_path then Project.load code_path
    else
      let code = read_file code_path in
      let layouts =
        List.map (fun path -> (layout_name_of_path path, read_file path)) layout_paths
      in
      Framework.App.of_source ~name:(layout_name_of_path code_path) ~code ~layouts
  in
  match loaded with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok app ->
      if show_diagnostics then begin
        let diagnostics = Framework.App.diagnostics app in
        List.iter (fun d -> Fmt.pr "%a@." Jir.Wellformed.pp_diagnostic d) diagnostics;
        if not (Jir.Wellformed.is_clean diagnostics) then exit 1
      end;
      let r = Gator.Analysis.analyze app in
      if json then begin
        print_endline (Gator.Export.to_string ~pretty:true r);
        exit 0
      end;
      Fmt.pr "%a@.@." Gator.Analysis.pp_summary r;
      List.iter
        (fun (op : Gator.Graph.op) ->
          let views = Gator.Analysis.op_receiver_views r op in
          let results = Gator.Analysis.op_result_views r op in
          Fmt.pr "%a@." Gator.Node.pp_op_site op.site;
          if views <> [] then
            Fmt.pr "  receivers: %a@." (Fmt.list ~sep:Fmt.comma Gator.Node.pp_view) views;
          if results <> [] then
            Fmt.pr "  results:   %a@." (Fmt.list ~sep:Fmt.comma Gator.Node.pp_view) results)
        (Gator.Analysis.ops r);
      if show_interactions then begin
        Fmt.pr "@.Interactions (activity, view, event, handler):@.";
        List.iter
          (fun ix -> Fmt.pr "  %a@." Gator.Analysis.pp_interaction ix)
          (Gator.Analysis.interactions r);
        match Gator.Analysis.transitions r with
        | [] -> ()
        | transitions ->
            Fmt.pr "@.Activity transitions:@.";
            List.iter (fun (a, b) -> Fmt.pr "  %s -> %s@." a b) transitions
      end;
      if run_dynamic then begin
        let outcome = Dynamic.Interp.run app in
        let coverage = Dynamic.Oracle.check r outcome in
        Fmt.pr "@.Dynamic run: %d observations; %a@."
          (List.length outcome.observations)
          Dynamic.Oracle.pp_coverage coverage
      end;
      if dump_dot then Fmt.pr "@.%a@." Gator.Graph.pp_dot r.graph

open Cmdliner

let () =
  let code =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"ALite source file, or a project directory (src/*.alite + res/layout/*.xml).")
  in
  let layouts =
    Arg.(
      value & opt_all file []
      & info [ "l"; "layout" ] ~docv:"XML"
          ~doc:"Layout XML file; its basename (minus extension) is the layout name. Repeatable.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Dump the constraint graph in Graphviz form.") in
  let interactions =
    Arg.(value & flag & info [ "interactions" ] ~doc:"Print (activity, view, event, handler) tuples.")
  in
  let diagnostics =
    Arg.(value & flag & info [ "check" ] ~doc:"Run well-formedness diagnostics first.")
  in
  let dynamic =
    Arg.(
      value & flag
      & info [ "dynamic" ] ~doc:"Also execute the dynamic semantics and check soundness coverage.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full solution as JSON and exit.")
  in
  let term =
    Term.(const run $ code $ layouts $ dot $ interactions $ diagnostics $ dynamic $ json)
  in
  let info =
    Cmd.info "gator" ~doc:"Static reference analysis for GUI objects (CGO'14) on ALite programs."
  in
  exit (Cmd.eval (Cmd.v info term))
