bin/gator_cli.ml: Arg Cmd Cmdliner Dynamic Filename Fmt Framework Fun Gator Jir List Project Sys Term
