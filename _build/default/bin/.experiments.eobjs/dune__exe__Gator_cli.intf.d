bin/gator_cli.mli:
