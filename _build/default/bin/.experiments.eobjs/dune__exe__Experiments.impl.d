bin/experiments.ml: Arg Cmd Cmdliner Report Term
