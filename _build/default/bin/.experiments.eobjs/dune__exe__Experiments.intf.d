bin/experiments.mli:
