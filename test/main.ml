(* Aggregated test entry point: `dune runtest` runs every suite. *)
let () =
  Alcotest.run "gator"
    [
      ("prng", Test_prng.suite);
      ("worklist", Test_worklist.suite);
      ("pretty", Test_pretty.suite);
      ("json", Test_json.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("roundtrip", Test_roundtrip.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("typing", Test_typing.suite);
      ("wellformed", Test_wellformed.suite);
      ("axml", Test_axml.suite);
      ("layout", Test_layout.suite);
      ("framework", Test_framework.suite);
      ("graph", Test_graph.suite);
      ("extract", Test_extract.suite);
      ("inflate", Test_inflate.suite);
      ("solve", Test_solve.suite);
      ("delta", Test_delta.suite);
      ("intern", Test_intern.suite);
      ("shared-intern", Test_shared_intern.suite);
      ("ctx-keyed", Test_ctx_keyed.suite);
      ("incremental", Test_incremental.suite);
      ("query", Test_query.suite);
      ("server", Test_server.suite);
      ("interp", Test_interp.suite);
      ("oracle", Test_oracle.suite);
      ("sound", Test_sound.suite);
      ("corpus", Test_corpus.suite);
      ("gen", Test_gen.suite);
      ("metrics", Test_metrics.suite);
      ("report", Test_report.suite);
      ("pool", Test_pool.suite);
      ("stream", Test_stream.suite);
      ("project", Test_project.suite);
      ("misc", Test_misc.suite);
      ("isomorphism", Test_isomorphism.suite);
    ]
