module J = Util.Json

let parse_ok s = match J.of_string s with Ok v -> v | Error e -> Alcotest.failf "parse: %s" e

let test_scalars () =
  Alcotest.check Alcotest.bool "null" true (parse_ok "null" = J.Null);
  Alcotest.check Alcotest.bool "true" true (parse_ok "true" = J.Bool true);
  Alcotest.check Alcotest.bool "false" true (parse_ok "false" = J.Bool false);
  Alcotest.check Alcotest.bool "int" true (parse_ok "42" = J.Int 42);
  Alcotest.check Alcotest.bool "negative" true (parse_ok "-7" = J.Int (-7));
  Alcotest.check Alcotest.bool "float" true (parse_ok "1.5" = J.Float 1.5);
  Alcotest.check Alcotest.bool "exponent" true (parse_ok "2e3" = J.Float 2000.0)

let test_strings () =
  Alcotest.check Alcotest.bool "plain" true (parse_ok {|"abc"|} = J.String "abc");
  Alcotest.check Alcotest.bool "escapes" true
    (parse_ok {|"a\"b\\c\nd\te"|} = J.String "a\"b\\c\nd\te");
  Alcotest.check Alcotest.bool "unicode ascii" true (parse_ok {|"A"|} = J.String "A")

let test_collections () =
  Alcotest.check Alcotest.bool "array" true
    (parse_ok "[1, 2, 3]" = J.List [ J.Int 1; J.Int 2; J.Int 3 ]);
  Alcotest.check Alcotest.bool "empty array" true (parse_ok "[]" = J.List []);
  Alcotest.check Alcotest.bool "object" true
    (parse_ok {|{"a": 1, "b": [true]}|} = J.Obj [ ("a", J.Int 1); ("b", J.List [ J.Bool true ]) ]);
  Alcotest.check Alcotest.bool "empty object" true (parse_ok "{}" = J.Obj [])

let test_errors () =
  let bad s =
    match J.of_string s with Error _ -> () | Ok _ -> Alcotest.failf "accepted %S" s
  in
  bad "";
  bad "[1,";
  bad "{\"a\"}";
  bad "nul";
  bad "\"unterminated";
  bad "1 2"

let test_member () =
  let v = parse_ok {|{"x": {"y": 3}}|} in
  Alcotest.check Alcotest.bool "nested member" true
    (Option.bind (J.member "x" v) (J.member "y") = Some (J.Int 3));
  Alcotest.check Alcotest.bool "missing" true (J.member "z" v = None)

let test_numeric_equal () =
  Alcotest.check Alcotest.bool "int = integral float" true (J.equal (J.Int 2) (J.Float 2.0));
  Alcotest.check Alcotest.bool "int <> fractional float" false (J.equal (J.Int 2) (J.Float 2.5));
  Alcotest.check Alcotest.bool "order insensitive fields are NOT equal" false
    (J.equal (J.Obj [ ("a", J.Int 1); ("b", J.Int 2) ]) (J.Obj [ ("b", J.Int 2); ("a", J.Int 1) ]))

(* Astral (non-BMP) code points: the writer must emit UTF-16 surrogate
   pairs (one \uXXXX only reaches the BMP) and the parser must combine
   them back into the original 4-byte UTF-8 sequence. *)
let test_astral_roundtrip () =
  (* U+1F600 GRINNING FACE as raw UTF-8 bytes *)
  let grin = "\xF0\x9F\x98\x80" in
  let gclef = "\xF0\x9D\x84\x9E" (* U+1D11E MUSICAL SYMBOL G CLEF *) in
  let printed = J.to_string (J.String grin) in
  Alcotest.check Alcotest.string "writer emits the surrogate pair" {|"\ud83d\ude00"|} printed;
  Alcotest.check Alcotest.bool "print/parse round-trip" true
    (parse_ok printed = J.String grin);
  Alcotest.check Alcotest.bool "parser combines an escaped pair" true
    (parse_ok {|"\uD834\uDD1E"|} = J.String gclef);
  (* mixed BMP / astral content survives both directions *)
  let mixed = "a" ^ grin ^ "\xE2\x82\xAC" ^ gclef ^ "z" (* a😀€𝄞z *) in
  Alcotest.check Alcotest.bool "mixed string round-trips" true
    (parse_ok (J.to_string (J.String mixed)) = J.String mixed);
  Alcotest.check Alcotest.bool "pretty form round-trips too" true
    (parse_ok (J.to_string ~pretty:true (J.String mixed)) = J.String mixed);
  (* object keys go through the same escaper *)
  let keyed = J.Obj [ (grin, J.Int 1) ] in
  Alcotest.check Alcotest.bool "astral object key round-trips" true
    (J.equal (parse_ok (J.to_string keyed)) keyed)

let test_unpaired_surrogates () =
  (* a lone high or low surrogate escape is tolerated (lenient
     per-escape byte encoding), not an error *)
  let lone_hi = parse_ok {|"\uD83Dx"|} and lone_lo = parse_ok {|"\uDE00"|} in
  (match (lone_hi, lone_lo) with
  | J.String hi, J.String lo ->
      Alcotest.check Alcotest.bool "high surrogate kept, tail intact" true
        (String.length hi > 1 && hi.[String.length hi - 1] = 'x');
      Alcotest.check Alcotest.bool "low surrogate kept" true (String.length lo > 0)
  | _ -> Alcotest.fail "expected strings");
  (* high surrogate followed by a non-surrogate escape: the follower
     must be decoded on its own (the parser rewinds) *)
  match parse_ok {|"\uD83D\u0041"|} with
  | J.String s ->
      Alcotest.check Alcotest.bool "follower decoded separately" true
        (String.length s > 1 && s.[String.length s - 1] = 'A')
  | _ -> Alcotest.fail "expected a string"

(* Byte-stability of the lenient surrogate handling, both directions.
   The parser encodes an unpaired \uXXXX surrogate as CESU-8; the
   writer must escape those three bytes back to \uXXXX (not leak them
   as raw non-UTF-8 output), EXCEPT when a high+low pair sits adjacent
   in the value — escaping that would make the parser recombine the
   pair into one astral code point, different bytes from the input. *)
let test_surrogate_byte_stability () =
  let reparse text = parse_ok (J.to_string (parse_ok text)) in
  (* text -> value -> text: a lone low surrogate re-escapes verbatim *)
  Alcotest.check Alcotest.string "lone low re-escapes" {|"\udc00"|}
    (J.to_string (parse_ok {|"\uDC00"|}));
  Alcotest.check Alcotest.string "lone high re-escapes" {|"\ud83dx"|}
    (J.to_string (parse_ok {|"\uD83Dx"|}));
  (* and the reparse yields the same value bytes *)
  Alcotest.check Alcotest.bool "lone low value stable" true
    (reparse {|"\uDC00"|} = parse_ok {|"\uDC00"|});
  Alcotest.check Alcotest.bool "two highs value stable" true
    (reparse {|"\uD800\uD800"|} = parse_ok {|"\uD800\uD800"|});
  Alcotest.check Alcotest.bool "two lows value stable" true
    (reparse {|"\uDC00\uDC00"|} = parse_ok {|"\uDC00\uDC00"|});
  (* value -> text -> value: CESU-8 bytes in a String survive *)
  let lone_lo = "\xED\xB0\x80" (* CESU-8 U+DC00 *) in
  let lone_hi = "\xED\xA0\xBD" (* CESU-8 U+D83D *) in
  let cesu_pair = lone_hi ^ "\xED\xB8\x80" (* CESU-8 D83D DE00, adjacent *) in
  List.iter
    (fun s ->
      Alcotest.check Alcotest.bool "value bytes stable" true
        (parse_ok (J.to_string (J.String s)) = J.String s))
    [ lone_lo; lone_hi; cesu_pair; "a" ^ lone_lo ^ "z"; lone_lo ^ lone_lo ];
  (* the writer's output for lone surrogates is pure ASCII (no raw
     CESU-8 leaks into the wire format) *)
  String.iter
    (fun c -> if Char.code c >= 0x80 then Alcotest.fail "raw byte leaked")
    (J.to_string (J.String lone_lo));
  (* real astral content still writes as a pair and recombines *)
  let grin = "\xF0\x9F\x98\x80" in
  Alcotest.check Alcotest.bool "astral still round-trips" true
    (parse_ok (J.to_string (J.String grin)) = J.String grin)

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun n -> J.Int n) (int_range (-1000000) 1000000);
        map (fun s -> J.String s) (string_size ~gen:printable (0 -- 15));
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        oneof
          [
            scalar;
            map (fun xs -> J.List xs) (list_size (0 -- 4) (self (depth - 1)));
            map
              (fun kvs ->
                (* object keys must be distinct for roundtrip equality *)
                J.Obj (List.mapi (fun i (k, v) -> (Printf.sprintf "k%d_%s" i k, v)) kvs))
              (list_size (0 -- 4) (pair (string_size ~gen:(char_range 'a' 'z') (0 -- 5)) (self (depth - 1))));
          ])
    3

let roundtrip_compact =
  QCheck.Test.make ~name:"compact print/parse roundtrip" ~count:500
    (QCheck.make ~print:(J.to_string ~pretty:true) json_gen)
    (fun v ->
      match J.of_string (J.to_string v) with
      | Ok v' -> J.equal v v'
      | Error e -> QCheck.Test.fail_reportf "reparse: %s" e)

let roundtrip_pretty =
  QCheck.Test.make ~name:"pretty print/parse roundtrip" ~count:300
    (QCheck.make ~print:(J.to_string ~pretty:true) json_gen)
    (fun v ->
      match J.of_string (J.to_string ~pretty:true v) with
      | Ok v' -> J.equal v v'
      | Error e -> QCheck.Test.fail_reportf "reparse: %s" e)

let test_export_connectbot () =
  let r = Gator.Analysis.analyze (Corpus.Connectbot.app ()) in
  let text = Gator.Export.to_string ~pretty:true r in
  match J.of_string text with
  | Error e -> Alcotest.failf "export does not parse: %s" e
  | Ok doc ->
      Alcotest.check Alcotest.bool "app name" true
        (J.member "app" doc = Some (J.String "ConnectBot"));
      let count field =
        match Option.bind (J.member field doc) J.to_list with
        | Some xs -> List.length xs
        | None -> Alcotest.failf "missing %s" field
      in
      Alcotest.check Alcotest.int "10 operations" 10 (count "operations");
      Alcotest.check Alcotest.int "10 views" 10 (count "views");
      Alcotest.check Alcotest.int "1 interaction" 1 (count "interactions");
      Alcotest.check Alcotest.int "1 activity" 1 (count "activities")

let test_export_transitions () =
  let app =
    match
      Framework.App.of_source ~name:"T" ~layouts:[]
        ~code:
          {|class A extends Activity { method onCreate(): void { t = new B(); this.startActivity(t); } }
            class B extends Activity { method onCreate(): void { } }|}
    with
    | Ok app -> app
    | Error e -> Alcotest.fail e
  in
  let r = Gator.Analysis.analyze app in
  match J.of_string (Gator.Export.to_string r) with
  | Error e -> Alcotest.failf "export: %s" e
  | Ok doc -> (
      match Option.bind (J.member "transitions" doc) J.to_list with
      | Some [ edge ] ->
          Alcotest.check Alcotest.bool "edge" true
            (J.member "from" edge = Some (J.String "A") && J.member "to" edge = Some (J.String "B"))
      | _ -> Alcotest.fail "expected one transition")

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "collections" `Quick test_collections;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "member" `Quick test_member;
    Alcotest.test_case "numeric equality" `Quick test_numeric_equal;
    Alcotest.test_case "astral round-trip" `Quick test_astral_roundtrip;
    Alcotest.test_case "unpaired surrogates tolerated" `Quick test_unpaired_surrogates;
    Alcotest.test_case "surrogate byte stability" `Quick test_surrogate_byte_stability;
    QCheck_alcotest.to_alcotest roundtrip_compact;
    QCheck_alcotest.to_alcotest roundtrip_pretty;
    Alcotest.test_case "export: ConnectBot document" `Quick test_export_connectbot;
    Alcotest.test_case "export: transitions" `Quick test_export_transitions;
  ]
