(* Sound mode: unknown-id / unknown-class markers (⊤).

   The reflective family routes its content layout, a find-view id and
   a set-id id through unresolvable [R.layout.?] / [R.id.?] lookups.
   The battery checks the whole contract:
   - all three engines agree bit-for-bit, including the imprecision
     taint tables the shared post-pass installs;
   - the static solution covers EVERY concrete resolution of the
     reflective lookups (dynamic-oracle sweep over candidate layouts
     and view ids) — the soundness anchor;
   - taint is a strict, meaningful subset: the ⊤ activity's sets are
     polluted, the concrete activity's are not, and taint ⊆ solution
     everywhere;
   - concrete queries still see the [SetId (v, ⊤)] sentinel carrier,
     forward and backward;
   - solved state round-trips through the snapshot codec with taints,
     and warm starts refuse ⊤ state with a pinned reason. *)
open Gator

let engines = [ Config.Naive; Config.Delta; Config.Interned ]

let with_solver solver = { Config.default with Config.solver }

let refl_app ?(layouts = 3) ?(seed = 42) () = Corpus.Gen.reflective_app ~layouts ~seed ()

let sorted_taints r =
  List.sort
    (fun (n1, _) (n2, _) -> Node.compare n1 n2)
    (List.map (fun (n, vs) -> (n, Graph.VS.elements vs)) (Graph.tainted_nodes r.Analysis.graph))

let check_taints_equal name a b =
  let ta = sorted_taints a and tb = sorted_taints b in
  if
    List.compare
      (fun (n1, vs1) (n2, vs2) ->
        match Node.compare n1 n2 with
        | 0 -> List.compare Node.compare_value vs1 vs2
        | c -> c)
      ta tb
    <> 0
  then
    Alcotest.failf "%s: taint tables differ:@.  a: %a@.  b: %a" name
      Fmt.(Dump.list (pair Node.pp (Dump.list Node.pp_value)))
      ta
      Fmt.(Dump.list (pair Node.pp (Dump.list Node.pp_value)))
      tb

let test_three_engines () =
  let app = refl_app () in
  let reference = Analysis.analyze ~config:(with_solver Config.Naive) app in
  Alcotest.(check bool) "⊤ markers detected" true (Graph.has_top reference.Analysis.graph);
  List.iter
    (fun solver ->
      let candidate = Analysis.analyze ~config:(with_solver solver) app in
      Test_delta.check_same_solution
        (Printf.sprintf "reflective[naive vs %s]" (Config.solver_name solver))
        reference candidate;
      check_taints_equal
        (Printf.sprintf "reflective taints[naive vs %s]" (Config.solver_name solver))
        reference candidate)
    engines

(* Soundness anchor: sweep every candidate resolution of the ⊤
   lookups, replay the dynamic semantics, require full coverage. *)
let oracle_sweep name app (r : Analysis.t) ~layout_cands ~view_cands =
  List.iter
    (fun top_layout ->
      List.iter
        (fun top_view ->
          let options = { Dynamic.Interp.default_options with top_layout; top_view } in
          let c = Dynamic.Oracle.check r (Dynamic.Interp.run ~options app) in
          if not (Dynamic.Oracle.is_sound c) then
            Alcotest.failf "%s unsound at layout=%s view=%s: %a" name
              (Option.value ~default:"-" top_layout)
              (Option.value ~default:"-" top_view)
              Dynamic.Oracle.pp_coverage c)
        view_cands)
    layout_cands

let refl_layout_cands layouts =
  None :: List.init layouts (fun i -> Some (Printf.sprintf "Refl_lyt%d" i))

let refl_view_cands layouts =
  None
  :: List.concat
       (List.init layouts (fun i ->
            [ Some (Printf.sprintf "vid_root%d" i); Some (Printf.sprintf "vid_btn%d" i) ]))

let test_oracle_superset () =
  let layouts = 3 in
  let app = refl_app ~layouts () in
  let r = Analysis.analyze app in
  oracle_sweep "reflective" app r ~layout_cands:(refl_layout_cands layouts)
    ~view_cands:(refl_view_cands layouts)

let test_taint_meaningful () =
  let app = refl_app () in
  let r = Analysis.analyze app in
  let polluted, nonempty = Analysis.pollution r in
  Alcotest.(check bool) "some sets polluted" true (polluted > 0);
  Alcotest.(check bool) "not all sets polluted" true (polluted < nonempty);
  (* taint ⊆ solution at every node *)
  List.iter
    (fun (node, vs) ->
      Graph.VS.iter
        (fun v ->
          if not (Graph.VS.mem v (Graph.set_of r.Analysis.graph node)) then
            Alcotest.failf "taint outside solution at %a: %a" Node.pp node Node.pp_value v)
        vs)
    (Graph.tainted_nodes r.Analysis.graph);
  (* the concrete activity's find result is exact: untainted *)
  let x = Analysis.var ~cls:"Refl_Concrete" ~meth:"onCreate" ~arity:0 "x" in
  Alcotest.(check bool) "concrete activity untainted" true
    (Graph.VS.is_empty (Graph.taints_of r.Analysis.graph x));
  (* the reflective find-by-⊤ result is polluted *)
  let v = Analysis.var ~cls:"Refl_Activity" ~meth:"onCreate" ~arity:0 "v" in
  Alcotest.(check bool) "⊤ find result tainted" false
    (Graph.VS.is_empty (Graph.taints_of r.Analysis.graph v))

let test_sentinel_concrete_queries () =
  let app = refl_app () in
  let r, solved = Incremental.analyze_solved app in
  (* the SetId(w, ⊤) carrier answers every concrete id name *)
  let carrier =
    List.exists
      (fun view -> match view with Node.V_alloc _ -> true | _ -> false)
      (Analysis.views_with_id r "vid_btn1")
  in
  Alcotest.(check bool) "sentinel carrier in views_with_id" true carrier;
  (* backward activities-of-id agrees with the forward projection,
     sentinel included *)
  let q = Query.create ~hierarchy:app.Framework.App.hierarchy solved in
  List.iter
    (fun i ->
      let name = Printf.sprintf "vid_btn%d" i in
      let acts = Query.activities_of_id q name in
      Alcotest.(check bool)
        (Printf.sprintf "⊤ activity displays %s" name)
        true
        (List.mem "Refl_Activity" acts))
    [ 0; 1; 2 ]

let test_snapshot_roundtrip_and_warm_refusal () =
  let app = refl_app () in
  let r, solved = Incremental.analyze_solved app in
  (match Snapshot.of_json (Snapshot.to_json solved) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok loaded ->
      Alcotest.(check bool) "has_top survives the codec" true
        (Graph.has_top (loaded.Solve.sd_graph));
      let taints g = List.length (Graph.tainted_nodes g) in
      Alcotest.(check int) "taint rows survive the codec"
        (taints r.Analysis.graph)
        (taints (loaded.Solve.sd_graph));
      (* ⊤ state refuses warm starts with a pinned reason... *)
      let warm, _ = Incremental.analyze_incremental ~prev:loaded app in
      Alcotest.(check bool) "warm start fell back" false warm.Analysis.stats.Solve.warm_solve;
      Alcotest.(check (option string))
        "refusal reason pinned"
        (Some "unknown-id markers present: sound mode is not warm-startable")
        warm.Analysis.stats.Solve.fallback;
      (* ...and the CLI warning renders the reason verbatim *)
      Alcotest.(check (option string))
        "stderr warning pinned"
        (Some
           "incremental: warm start refused (unknown-id markers present: sound mode is not \
            warm-startable); ran a full solve")
        (Incremental.refusal_warning warm);
      (* the fallback still solved correctly *)
      Test_delta.check_same_solution "⊤ fallback solution" r warm)

let qcheck_random_reflective =
  QCheck.Test.make ~name:"random reflective apps: engines agree and stay sound" ~count:15
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let app = Corpus.Gen.random_reflective_app rng in
      let reference = Analysis.analyze ~config:(with_solver Config.Naive) app in
      List.iter
        (fun solver ->
          let candidate = Analysis.analyze ~config:(with_solver solver) app in
          Test_delta.check_same_solution "random reflective engines" reference candidate;
          check_taints_equal "random reflective taints" reference candidate)
        engines;
      let c = Dynamic.Oracle.check reference (Dynamic.Interp.run app) in
      if not (Dynamic.Oracle.is_sound c) then
        QCheck.Test.fail_reportf "seed %d unsound: %s" seed
          (Fmt.str "%a" Dynamic.Oracle.pp_coverage c);
      true)

let suite =
  [
    Alcotest.test_case "three engines agree on ⊤ apps (with taints)" `Quick test_three_engines;
    Alcotest.test_case "sound mode covers every candidate resolution" `Quick test_oracle_superset;
    Alcotest.test_case "taint is a meaningful strict subset" `Quick test_taint_meaningful;
    Alcotest.test_case "concrete queries see the ⊤ sentinel" `Quick test_sentinel_concrete_queries;
    Alcotest.test_case "snapshot round-trip + warm refusal" `Quick
      test_snapshot_roundtrip_and_warm_refusal;
    QCheck_alcotest.to_alcotest qcheck_random_reflective;
  ]
