(* The streaming driver.  Unit tests pin Pool.Stream's contract on
   cheap integer tasks — every produced task consumed exactly once,
   sequential path in submission order, watermark backpressure bound,
   fault isolation, argument validation — and the end-to-end tests
   prove the property the subsystem exists for: a long generated
   stream spills exactly the rows a one-shot batch of the same specs
   would, at any job count, failures included. *)
open Gator

(* ------------------------------------------------------------------ *)
(* Pool.Stream on integer tasks *)

let collect_run ~jobs ?high ?low ~n ?(work = fun x -> x * x) () =
  let got = ref [] in
  let stats =
    Pool.Stream.run ~jobs ?high ?low
      ~produce:(fun i -> if i < n then Some i else None)
      ~work
      ~consume:(fun i payload outcome -> got := (i, payload, outcome) :: !got)
      ()
  in
  (stats, List.rev !got)

let test_stream_all_consumed () =
  List.iter
    (fun jobs ->
      let stats, got = collect_run ~jobs ~n:200 () in
      Alcotest.check Alcotest.int "produced" 200 stats.Pool.Stream.st_produced;
      Alcotest.check Alcotest.int "consumed" 200 stats.Pool.Stream.st_consumed;
      Alcotest.check Alcotest.int "no failures" 0 stats.Pool.Stream.st_failed;
      Alcotest.check Alcotest.int "every task consumed once" 200 (List.length got);
      (* indexes, payloads, and results all line up *)
      let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) got in
      List.iteri
        (fun i (idx, payload, outcome) ->
          Alcotest.check Alcotest.int "index" i idx;
          Alcotest.check Alcotest.int "payload" i payload;
          Alcotest.check Alcotest.int "result" (i * i) (Pool.value_exn outcome))
        sorted)
    [ 1; 4; 8 ]

(* jobs <= 1 is the exact sequential loop: completion order IS
   submission order, nothing queues, no stealing. *)
let test_stream_sequential_order () =
  let stats, got = collect_run ~jobs:1 ~n:50 () in
  Alcotest.(check (list int)) "submission order" (List.init 50 Fun.id)
    (List.map (fun (i, _, _) -> i) got);
  Alcotest.check Alcotest.int "one task in flight at a time" 1 stats.Pool.Stream.st_max_queued;
  Alcotest.check Alcotest.int "nothing stolen" 0 stats.Pool.Stream.st_steals

let test_stream_backpressure () =
  let stats, got = collect_run ~jobs:4 ~high:5 ~low:2 ~n:300 () in
  Alcotest.check Alcotest.int "all consumed" 300 (List.length got);
  Alcotest.check Alcotest.bool "backlog bounded by high watermark" true
    (stats.Pool.Stream.st_max_queued <= 5)

let test_stream_empty () =
  let stats, got = collect_run ~jobs:4 ~n:0 () in
  Alcotest.check Alcotest.int "nothing produced" 0 stats.Pool.Stream.st_produced;
  Alcotest.check Alcotest.int "nothing consumed" 0 stats.Pool.Stream.st_consumed;
  Alcotest.(check (list unit)) "no outcomes" [] (List.map (fun _ -> ()) got)

let test_stream_invalid_watermarks () =
  List.iter
    (fun (high, low) ->
      match
        Pool.Stream.run ~jobs:2 ~high ~low
          ~produce:(fun _ -> None)
          ~work:Fun.id
          ~consume:(fun _ _ _ -> ())
          ()
      with
      | _ -> Alcotest.failf "high=%d low=%d accepted" high low
      | exception Invalid_argument _ -> ())
    [ (4, 4); (4, 5); (0, 0); (3, -1) ]

(* A raising task becomes one Error outcome; the stream keeps going. *)
let test_stream_fault_isolation () =
  List.iter
    (fun jobs ->
      let work x = if x = 57 then failwith "boom" else x * x in
      let stats, got = collect_run ~jobs ~n:120 ~work () in
      Alcotest.check Alcotest.int "all consumed" 120 stats.Pool.Stream.st_consumed;
      Alcotest.check Alcotest.int "one failure" 1 stats.Pool.Stream.st_failed;
      List.iter
        (fun (i, _, outcome) ->
          match outcome.Pool.oc_result with
          | Ok r -> Alcotest.check Alcotest.int "survivor result" (i * i) r
          | Error e ->
              Alcotest.check Alcotest.int "only task 57 failed" 57 i;
              Alcotest.check Alcotest.bool "exception captured" true
                (String.length e.Pool.err_exn > 0))
        got)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Streaming ingestion = batch, row for row *)

let sorted_rows rows = List.sort compare rows

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let batch_rows ~seed ~apps =
  let specs = List.init apps (Corpus.Gen.stream_spec ~seed) in
  let config = { Config.default with shared_intern = false } in
  List.map
    (Report.Experiments.jsonl_row ~timings:false)
    (Report.Experiments.run_specs ~config ~jobs:1 specs)

let stream_rows ?fail_apps ~seed ~apps ~jobs () =
  let rows = ref [] in
  let stats =
    Report.Experiments.run_stream ~jobs ~timings:false ?fail_apps ~seed ~apps
      ~emit:(fun row -> rows := row :: !rows)
      ()
  in
  (stats, List.rev !rows)

(* 500 generated apps through the stream at jobs 1/4/8: identical rows
   to the one-shot batch (order-normalized — the stream spills in
   completion order), with the backlog bounded by the default high
   watermark.  The batch runs the private interner tier and the stream
   the shared tier, so this doubles as a tier differential. *)
let test_stream_matches_batch () =
  let seed = 2026 and apps = 500 in
  let reference = sorted_rows (batch_rows ~seed ~apps) in
  List.iter
    (fun jobs ->
      let stats, rows = stream_rows ~seed ~apps ~jobs () in
      Alcotest.check Alcotest.int
        (Printf.sprintf "jobs=%d: produced" jobs)
        apps stats.Pool.Stream.st_produced;
      Alcotest.check Alcotest.int
        (Printf.sprintf "jobs=%d: consumed" jobs)
        apps stats.Pool.Stream.st_consumed;
      Alcotest.check Alcotest.int (Printf.sprintf "jobs=%d: failed" jobs) 0
        stats.Pool.Stream.st_failed;
      Alcotest.check Alcotest.bool
        (Printf.sprintf "jobs=%d: backlog bounded" jobs)
        true
        (stats.Pool.Stream.st_max_queued <= max (2 * jobs) 4);
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d: rows = batch rows" jobs)
        reference (sorted_rows rows))
    [ 1; 4; 8 ]

(* A mid-stream failure yields exactly one FAILED row; every other app
   still gets its normal row and the stream runs to completion. *)
let test_stream_failed_row () =
  let seed = 7 and apps = 60 in
  let victim = (Corpus.Gen.stream_spec ~seed 23).Corpus.Spec.sp_name in
  let stats, rows = stream_rows ~fail_apps:[ victim ] ~seed ~apps ~jobs:4 () in
  Alcotest.check Alcotest.int "stream completed" apps stats.Pool.Stream.st_consumed;
  Alcotest.check Alcotest.int "one row per app" apps (List.length rows);
  let failed = List.filter (fun row -> contains row {|"ok":false|}) rows in
  Alcotest.check Alcotest.int "exactly one FAILED row" 1 (List.length failed);
  let row = List.hd failed in
  Alcotest.check Alcotest.bool "row names the victim" true (contains row victim);
  Alcotest.check Alcotest.bool "row carries FAILED" true (contains row "FAILED")

let suite =
  [
    Alcotest.test_case "every task consumed once (jobs 1/4/8)" `Quick test_stream_all_consumed;
    Alcotest.test_case "sequential path preserves order" `Quick test_stream_sequential_order;
    Alcotest.test_case "high watermark bounds the backlog" `Quick test_stream_backpressure;
    Alcotest.test_case "empty stream" `Quick test_stream_empty;
    Alcotest.test_case "watermark validation" `Quick test_stream_invalid_watermarks;
    Alcotest.test_case "fault isolation on integer tasks" `Quick test_stream_fault_isolation;
    Alcotest.test_case "mid-stream failure spills one FAILED row" `Quick test_stream_failed_row;
    Alcotest.test_case "500-app stream = batch (jobs 1/4/8)" `Slow test_stream_matches_batch;
  ]
