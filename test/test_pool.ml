(* Domain-pool batch analysis: the parallel drivers must be
   observationally identical to the sequential loop — bit-identical
   solutions and byte-identical reports across the engine x schedule
   matrix ({naive, delta} x {jobs 1, 2, 4}) — and a crashing or
   malformed app must fail alone without taking the batch down. *)
open Gator

let with_solver solver config = { config with Config.solver }

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Pool primitives *)

let test_ordered_results () =
  let tasks = List.init 20 (fun i () -> i * i) in
  let outcomes = Pool.run ~jobs:4 tasks in
  Alcotest.check Alcotest.int "all results" 20 (List.length outcomes);
  List.iteri
    (fun i outcome ->
      Alcotest.check Alcotest.int "submission order" (i * i) (Pool.value_exn outcome))
    outcomes

let test_sequential_path_matches () =
  let tasks = List.init 7 (fun i () -> Printf.sprintf "task-%d" i) in
  let seq = List.map Pool.value_exn (Pool.run ~jobs:1 tasks) in
  let par = List.map Pool.value_exn (Pool.run ~jobs:4 tasks) in
  Alcotest.check (Alcotest.list Alcotest.string) "same values" seq par

let test_exception_isolation () =
  let tasks =
    [
      (fun () -> "before");
      (fun () -> failwith "boom");
      (fun () -> "after");
    ]
  in
  match Pool.run ~jobs:2 tasks with
  | [ a; b; c ] ->
      Alcotest.check Alcotest.string "sibling before" "before" (Pool.value_exn a);
      (match b.Pool.oc_result with
      | Error e ->
          Alcotest.check Alcotest.bool "exception text captured" true
            (contains e.Pool.err_exn "boom")
      | Ok _ -> Alcotest.fail "crashing task reported success");
      Alcotest.check Alcotest.string "sibling after" "after" (Pool.value_exn c)
  | _ -> Alcotest.fail "wrong outcome count"

let test_edge_cases () =
  Alcotest.check Alcotest.int "empty task list" 0 (List.length (Pool.run ~jobs:4 []));
  (* more workers than tasks *)
  let outcomes = Pool.run ~jobs:16 [ (fun () -> 1); (fun () -> 2) ] in
  Alcotest.check (Alcotest.list Alcotest.int) "two tasks" [ 1; 2 ]
    (List.map Pool.value_exn outcomes);
  Alcotest.check Alcotest.bool "default_jobs >= 1" true (Pool.default_jobs ~cap:0 () >= 1);
  Alcotest.check Alcotest.bool "default_jobs capped" true (Pool.default_jobs ~cap:2 () <= 2);
  Alcotest.check Alcotest.bool "config cap respected" true
    (Pool.default_jobs ~cap:Config.default.Config.jobs () <= Config.default.Config.jobs);
  match (Pool.run ~jobs:2 [ (fun () -> failwith "nope"); (fun () -> ()) ] : unit Pool.outcome list) with
  | [ bad; _ ] -> (
      match Pool.value_exn bad with
      | exception Failure _ -> ()
      | () -> Alcotest.fail "value_exn must raise on a failed outcome")
  | _ -> Alcotest.fail "wrong outcome count"

let test_submit_wait_shutdown () =
  let pool = Pool.create ~jobs:3 in
  Alcotest.check Alcotest.int "pool size" 3 (Pool.size pool);
  let counter = Atomic.make 0 in
  for _ = 1 to 50 do
    Pool.submit pool (fun () -> Atomic.incr counter)
  done;
  (* a raising raw task must not kill its worker *)
  Pool.submit pool (fun () -> failwith "raw-task crash");
  Pool.submit pool (fun () -> Atomic.incr counter);
  Pool.wait pool;
  Alcotest.check Alcotest.int "all raw tasks ran" 51 (Atomic.get counter);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  match Pool.submit pool (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "submit after shutdown must be rejected"

(* ------------------------------------------------------------------ *)
(* Differential matrix: corpus *)

let runs_exn results =
  List.map
    (fun r ->
      match r.Report.Experiments.cs_run with
      | Ok run -> run
      | Error e -> Alcotest.failf "%s unexpectedly failed: %s" r.cs_spec.Corpus.Spec.sp_name e)
    results

let check_batches_identical label reference candidate =
  Alcotest.check Alcotest.string (label ^ ": table1 bytes")
    (Report.Experiments.table1 reference)
    (Report.Experiments.table1 candidate);
  Alcotest.check Alcotest.string (label ^ ": table2 bytes")
    (Report.Experiments.table2 ~timings:false reference)
    (Report.Experiments.table2 ~timings:false candidate);
  Alcotest.check Alcotest.string (label ^ ": solverstats bytes")
    (Report.Experiments.solver_stats reference)
    (Report.Experiments.solver_stats candidate);
  List.iter2
    (fun (ref_run : Report.Experiments.corpus_run) (par_run : Report.Experiments.corpus_run) ->
      let d = Diff.compare ref_run.cr_analysis par_run.cr_analysis in
      if not (Diff.is_empty d) then
        Alcotest.failf "%s: %s solution differs: %a" label ref_run.cr_spec.Corpus.Spec.sp_name
          Diff.pp d)
    (runs_exn reference) (runs_exn candidate)

let test_corpus_matrix () =
  let configs =
    List.map
      (fun solver -> (Config.solver_name solver, with_solver solver Config.default))
      [ Config.Naive; Config.Delta; Config.Interned ]
    (* context-keyed cs-2 (interned default) and its inlining twin:
       both must be deterministic across schedules, and byte-identical
       to each other at any jobs level *)
    @ [
        ("keyed-cs2", { Config.default with inline_depth = 2 });
        ("inlined-cs2", { Config.default with inline_depth = 2; ctx_keyed = false });
      ]
  in
  let batches =
    List.map
      (fun (tag, config) ->
        let reference = Report.Experiments.run_corpus ~config ~jobs:1 () in
        List.iter
          (fun jobs ->
            let label = Printf.sprintf "%s/jobs=%d" tag jobs in
            let candidate = Report.Experiments.run_corpus ~config ~jobs () in
            check_batches_identical label reference candidate)
          [ 2; 4 ];
        (tag, reference))
      configs
  in
  (* cross-engine: the keyed cs-2 corpus run solves exactly what the
     inlining cs-2 run solves (solver-stats columns differ — the keyed
     run reports its contexts — so compare the solutions and tables) *)
  let keyed = List.assoc "keyed-cs2" batches and inlined = List.assoc "inlined-cs2" batches in
  Alcotest.check Alcotest.string "keyed-cs2 = inlined-cs2: table1 bytes"
    (Report.Experiments.table1 inlined) (Report.Experiments.table1 keyed);
  Alcotest.check Alcotest.string "keyed-cs2 = inlined-cs2: table2 bytes"
    (Report.Experiments.table2 ~timings:false inlined)
    (Report.Experiments.table2 ~timings:false keyed);
  List.iter2
    (fun (ref_run : Report.Experiments.corpus_run) (par_run : Report.Experiments.corpus_run) ->
      let d = Diff.compare ref_run.cr_analysis par_run.cr_analysis in
      if not (Diff.is_empty d) then
        Alcotest.failf "keyed-cs2 vs inlined-cs2: %s solution differs: %a"
          ref_run.cr_spec.Corpus.Spec.sp_name Diff.pp d)
    (runs_exn inlined) (runs_exn keyed)

(* Random apps through the same matrix: each task generates its own
   app from the (immutable) spec, so nothing mutable crosses domains. *)
let test_random_matrix () =
  let rng = Util.Prng.create 7741 in
  for i = 1 to 6 do
    let spec = Corpus.Gen.random_spec ~name:(Printf.sprintf "PoolRandom_%d" i) rng in
    let analyze solver () =
      Analysis.analyze ~config:(with_solver solver Config.default) (Corpus.Gen.generate spec)
    in
    let reference = analyze Config.Delta () in
    List.iter
      (fun jobs ->
        let outcomes = Pool.run ~jobs [ analyze Config.Naive; analyze Config.Delta ] in
        List.iter
          (fun outcome ->
            let candidate = Pool.value_exn outcome in
            Test_delta.check_same_solution
              (Printf.sprintf "%s/jobs=%d" spec.Corpus.Spec.sp_name jobs)
              reference candidate)
          outcomes)
      [ 2; 4 ];
    (* the cs-2 pair through the same schedules: pooled context-keyed
       and pooled inlining runs against a sequential structural cs-2 *)
    let cs2 ctx_keyed () =
      Analysis.analyze
        ~config:
          { (with_solver Config.Interned Config.default) with inline_depth = 2; ctx_keyed }
        (Corpus.Gen.generate spec)
    in
    let reference_cs2 =
      Analysis.analyze
        ~config:{ (with_solver Config.Delta Config.default) with inline_depth = 2 }
        (Corpus.Gen.generate spec)
    in
    List.iter
      (fun jobs ->
        let outcomes = Pool.run ~jobs [ cs2 true; cs2 false ] in
        List.iter
          (fun outcome ->
            Test_delta.check_same_solution
              (Printf.sprintf "%s-cs2/jobs=%d" spec.Corpus.Spec.sp_name jobs)
              reference_cs2 (Pool.value_exn outcome))
          outcomes)
      [ 2; 4 ]
  done

(* ------------------------------------------------------------------ *)
(* Fault isolation *)

let test_injected_failure_isolation () =
  let reference = Report.Experiments.run_corpus ~jobs:1 () in
  let results = Report.Experiments.run_corpus ~jobs:4 ~fail_apps:[ "Mileage" ] () in
  Alcotest.check Alcotest.int "all 20 rows present" (List.length reference) (List.length results);
  List.iter2
    (fun (ref_result : Report.Experiments.corpus_result) result ->
      let name = result.Report.Experiments.cs_spec.Corpus.Spec.sp_name in
      match result.cs_run with
      | Error e when name = "Mileage" ->
          Alcotest.check Alcotest.bool "failure text captured" true
            (contains e "injected failure")
      | Error e -> Alcotest.failf "sibling %s failed: %s" name e
      | Ok _ when name = "Mileage" -> Alcotest.fail "injected failure did not fire"
      | Ok run ->
          let ref_run = Result.get_ok ref_result.cs_run in
          let d = Diff.compare ref_run.cr_analysis run.cr_analysis in
          if not (Diff.is_empty d) then
            Alcotest.failf "sibling %s solution differs: %a" name Diff.pp d)
    reference results;
  let rendered = Report.Experiments.table2 results in
  Alcotest.check Alcotest.bool "FAILED row rendered" true (contains rendered "FAILED: ");
  Alcotest.check Alcotest.bool "siblings still tabulated" true (contains rendered "XBMC")

let malformed_task kind () =
  let code, layouts =
    match kind with
    | `Code -> ("class Broken { %% lexical garbage", [])
    | `Layout -> ("class A extends Activity {\n}\n", [ ("bad_layout", "<LinearLayout") ])
  in
  match Framework.App.of_source ~name:"malformed" ~code ~layouts with
  | Error e -> failwith e
  | Ok app -> Analysis.analyze app

let test_malformed_input_isolation () =
  List.iter
    (fun kind ->
      let good () = Analysis.analyze (Corpus.Connectbot.app ()) in
      let outcomes = Pool.run ~jobs:4 [ good; malformed_task kind; good ] in
      match outcomes with
      | [ a; bad; b ] ->
          (match bad.Pool.oc_result with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "malformed input must fail its task");
          let reference = good () in
          List.iter
            (fun outcome ->
              Test_delta.check_same_solution "ConnectBot sibling" reference
                (Pool.value_exn outcome))
            [ a; b ]
      | _ -> Alcotest.fail "wrong outcome count")
    [ `Code; `Layout ]

(* ------------------------------------------------------------------ *)
(* Determinism regression *)

let test_batch_determinism () =
  (* inline_depth > 0 exercises the per-run clone counter: under the
     old process-global counter, concurrent extractions interleave
     clone names and reports differ run to run *)
  List.iter
    (fun config ->
      let first = Report.Experiments.run_corpus ~config ~jobs:4 () in
      let second = Report.Experiments.run_corpus ~config ~jobs:4 () in
      Alcotest.check Alcotest.string "table1 byte-identical"
        (Report.Experiments.table1 first) (Report.Experiments.table1 second);
      Alcotest.check Alcotest.string "table2 byte-identical"
        (Report.Experiments.table2 ~timings:false first)
        (Report.Experiments.table2 ~timings:false second);
      Alcotest.check Alcotest.string "solverstats byte-identical"
        (Report.Experiments.solver_stats first)
        (Report.Experiments.solver_stats second))
    [
      Config.default;
      { Config.default with inline_depth = 1 };
      (* context-keyed cs-2 and its inlining twin: clone numbering and
         ⟨node, ctx⟩ minting must not depend on the schedule either *)
      { Config.default with inline_depth = 2 };
      { Config.default with inline_depth = 2; ctx_keyed = false };
    ]

let test_qcheck_pool_equivalence =
  QCheck.Test.make ~count:8 ~name:"random app: pooled naive/delta = sequential delta"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Util.Prng.create seed in
      let spec = Corpus.Gen.random_spec ~name:(Printf.sprintf "QPool_%d" seed) rng in
      let analyze solver () =
        Analysis.analyze ~config:(with_solver solver Config.default) (Corpus.Gen.generate spec)
      in
      let reference = analyze Config.Delta () in
      let outcomes = Pool.run ~jobs:2 [ analyze Config.Naive; analyze Config.Delta ] in
      List.for_all
        (fun outcome ->
          Diff.is_empty (Diff.compare reference (Pool.value_exn outcome)))
        outcomes)

let suite =
  [
    Alcotest.test_case "ordered results" `Quick test_ordered_results;
    Alcotest.test_case "sequential path matches" `Quick test_sequential_path_matches;
    Alcotest.test_case "exception isolation" `Quick test_exception_isolation;
    Alcotest.test_case "edge cases" `Quick test_edge_cases;
    Alcotest.test_case "submit/wait/shutdown" `Quick test_submit_wait_shutdown;
    Alcotest.test_case "random apps engine x schedule matrix" `Quick test_random_matrix;
    Alcotest.test_case "malformed input isolation" `Quick test_malformed_input_isolation;
    Alcotest.test_case "injected failure isolation (corpus)" `Slow test_injected_failure_isolation;
    Alcotest.test_case "corpus engine x schedule matrix" `Slow test_corpus_matrix;
    Alcotest.test_case "batch determinism (jobs=4)" `Slow test_batch_determinism;
    QCheck_alcotest.to_alcotest test_qcheck_pool_equivalence;
  ]
