(* The demand-driven query engine.  The backward walk must be
   bit-identical to the forward fixpoint's projections — at EVERY fuel
   budget, since each fallback (generator, cycle, budget) substitutes
   the cached forward solution, which is exact.  The battery mirrors
   the three-engine differential in [test_intern.ml]: corpus apps,
   qcheck random apps, cycle-heavy apps, incrementally patched apps,
   sequentially and under the worker pool at jobs 1 and 4. *)
open Gator

(* Budgets to sweep: 0 forces pure cached reads, 1 and 7 truncate
   mid-walk, the default runs the walk to completion. *)
let budgets = [ 0; 1; 7; Query.default_budget ]

let pp_values = Fmt.Dump.list Node.pp_value

let pp_views = Fmt.Dump.list Node.pp_view

(* Every query surface of a fresh handle over [solved] against forward
   projections of [r] (which may be a differently produced analysis of
   the same app — e.g. a cold solve vs a warm-captured state). *)
let check_queries name (r : Analysis.t) solved =
  let hierarchy = r.Analysis.app.Framework.App.hierarchy in
  let locations = Graph.locations r.Analysis.graph in
  (* points-to at every location, at every budget, fresh handle each
     so the memo can't mask budget behaviour *)
  List.iter
    (fun budget ->
      let q = Query.create ~hierarchy solved in
      List.iter
        (fun node ->
          let expected = Analysis.values_at r node in
          match Query.points_to ~budget q node with
          | None -> Alcotest.failf "%s[b=%d]: %a unknown to the query engine" name budget Node.pp node
          | Some got ->
              if List.compare Node.compare_value expected got <> 0 then
                Alcotest.failf "%s[b=%d]: backward differs at %a:@.  forward  %a@.  backward %a"
                  name budget Node.pp node pp_values expected pp_values got)
        locations)
    budgets;
  let q = Query.create ~hierarchy solved in
  let it = Query.interner q in
  (* views-of-listener vs the inverse of the forward registration table *)
  let module LM = Map.Make (struct
    type t = Node.listener_abs

    let compare = Node.compare_listener
  end) in
  let registered = ref LM.empty in
  for wid = 0 to Intern.view_count it - 1 do
    let w = Intern.view_of it wid in
    List.iter
      (fun (l, _iface) ->
        registered :=
          LM.update l (function None -> Some [ w ] | Some ws -> Some (w :: ws)) !registered)
      (Analysis.listeners_of_view r w)
  done;
  LM.iter
    (fun l ws ->
      let expected = List.sort Node.compare_view ws in
      let got = Query.views_of_listener q l in
      if List.compare Node.compare_view expected got <> 0 then
        Alcotest.failf "%s: views-of-listener differs at %a:@.  forward  %a@.  backward %a" name
          Node.pp_listener l pp_views expected pp_views got)
    !registered;
  Alcotest.(check (list reject))
    (name ^ ": unregistered listener answers empty")
    []
    (Query.views_of_listener q (Node.L_act "NoSuchListener_zzz"));
  (* activities-of-id vs forward views_with_id x views_of_activity *)
  let id_names =
    List.sort_uniq String.compare
      (List.filter_map
         (fun wid ->
           match Intern.view_of it wid with
           | Node.V_infl { Node.v_vid = Some n; _ } -> Some n
           | _ -> None)
         (List.init (Intern.view_count it) Fun.id))
  in
  List.iter
    (fun id_name ->
      let with_id = Analysis.views_with_id r id_name in
      let mem v vs = List.exists (fun v' -> Node.compare_view v v' = 0) vs in
      let expected =
        List.sort_uniq String.compare
          (List.filter_map
             (fun (cls : Jir.Ast.cls) ->
               let shown = Analysis.views_of_activity r cls.Jir.Ast.c_name in
               if List.exists (fun v -> mem v shown) with_id then Some cls.Jir.Ast.c_name
               else None)
             (Framework.App.activity_classes r.Analysis.app))
      in
      let got = Query.activities_of_id q id_name in
      if expected <> got then
        Alcotest.failf "%s: activities-of-id %S differs:@.  forward  %a@.  backward %a" name
          id_name
          Fmt.(Dump.list string)
          expected
          Fmt.(Dump.list string)
          got)
    ("no_such_id_zzz" :: id_names)

(* Full solve that captures state, checked against its own projections. *)
let check_app name app =
  let r, solved = Incremental.analyze_solved app in
  check_queries name r solved;
  (r, solved)

(* ------------------------------------------------------------------ *)

let test_connectbot () = ignore (check_app "ConnectBot" (Corpus.Connectbot.app ()))

let test_corpus () =
  List.iter
    (fun (spec : Corpus.Spec.t) ->
      ignore (check_app spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec)))
    Corpus.Apps.specs

let test_qcheck_random =
  QCheck.Test.make ~count:8 ~name:"random app: backward = forward at every budget"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Util.Prng.create seed in
      let spec = Corpus.Gen.random_spec ~name:(Printf.sprintf "QQuery_%d" seed) rng in
      ignore (check_app spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec));
      true)

(* Cycle-heavy apps: the condensed graph can still close cycles
   through cast edges, exercising the backward walk's cycle fallback. *)
let test_cyclic () =
  let app =
    Corpus.Gen.cyclic_app ~name:"QCycle" ~chains:3 ~chain_len:9 ~two_cycles:2 ~bridges:4 ~seed:23
      ()
  in
  ignore (check_app "QCycle" app)

let test_qcheck_cyclic =
  QCheck.Test.make ~count:8 ~name:"cyclic app: backward = forward at every budget"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Util.Prng.create seed in
      let app = Corpus.Gen.random_cyclic_app ~name:(Printf.sprintf "QCyc_%d" seed) rng in
      ignore (check_app (Printf.sprintf "QCyc_%d" seed) app);
      true)

(* Incrementally patched apps: the query engine must be exact over a
   WARM-captured state (whose sd_targets carry transitively), checked
   against a cold from-scratch forward solve of the patched app. *)
let test_patched () =
  let base = Corpus.Gen.generate (Option.get (Corpus.Apps.by_name "XBMC")) in
  let _, solved0 = Incremental.analyze_solved base in
  let patches =
    [
      ( "XBMC+stmt",
        [
          Corpus.Patch.Add_stmt
            {
              cls = "Activity_0";
              meth = "onCreate";
              arity = 0;
              stmt = Jir.Ast.New ("q_tmp", "android.widget.Button");
            };
        ] );
      ("XBMC+rename", [ Corpus.Patch.Rename_view_id { from_ = "view_0_0"; to_ = "view_0_1" } ]);
    ]
  in
  ignore
    (List.fold_left
       (fun prev (name, patch) ->
         let patched =
           match Corpus.Patch.apply base patch with
           | Ok app -> app
           | Error e -> Alcotest.failf "%s: patch failed: %s" name e
         in
         let warm_r, warm_solved = Incremental.analyze_incremental ~prev patched in
         Alcotest.(check bool) (name ^ " solved warm") true warm_r.Analysis.stats.Solve.warm_solve;
         (* forward reference: a cold solve of the same patched app *)
         let cold = Analysis.analyze patched in
         check_queries name cold warm_solved;
         warm_solved)
       solved0 patches)

(* Under the worker pool: apps built and queried inside their tasks,
   answers independent of domain scheduling. *)
let test_jobs () =
  let seeds = [ 11; 12; 13; 14 ] in
  List.iter
    (fun jobs ->
      let tasks =
        List.map
          (fun seed () ->
            let rng = Util.Prng.create seed in
            let name = Printf.sprintf "QJobs_%d" seed in
            let spec = Corpus.Gen.random_spec ~name rng in
            ignore (check_app name (Corpus.Gen.generate spec)))
          seeds
      in
      List.iter Pool.value_exn (Pool.run ~jobs tasks))
    [ 1; 4 ]

(* The counters must prove the demand-driven claim: a default-budget
   walk expands representatives backward and never falls back on
   budget; a zero-budget walk reads only cached solutions. *)
let test_stats_counters () =
  let app = Corpus.Gen.generate (Option.get (Corpus.Apps.by_name "XBMC")) in
  let r, solved = Incremental.analyze_solved app in
  let hierarchy = app.Framework.App.hierarchy in
  let q = Query.create ~hierarchy solved in
  List.iter (fun node -> ignore (Query.points_to q node)) (Graph.locations r.Analysis.graph);
  let s = Query.stats q in
  Alcotest.(check bool) "queries counted" true (s.Query.q_queries > 0);
  Alcotest.(check bool) "backward expansions happened" true (s.Query.q_expanded > 0);
  Alcotest.(check int) "no budget fallback at default budget" 0 s.Query.q_budget_fallbacks;
  let q0 = Query.create ~hierarchy solved in
  List.iter
    (fun node -> ignore (Query.points_to ~budget:0 q0 node))
    (Graph.locations r.Analysis.graph);
  let s0 = Query.stats q0 in
  Alcotest.(check int) "budget 0 never expands" 0 s0.Query.q_expanded;
  Alcotest.(check bool) "budget 0 falls back" true (s0.Query.q_budget_fallbacks > 0);
  (* unknown nodes answer None without minting interner ids *)
  let before = Intern.node_count (Query.interner q) in
  Alcotest.(check bool) "unknown node is None" true
    (Query.points_to q (Node.N_field "no_such_field_zzz") = None);
  Alcotest.(check int) "unknown node minted nothing" before (Intern.node_count (Query.interner q))

(* Counter semantics on a SHARED engine: monotone accumulation since
   [create], never reset between queries.  A budget-starved query
   leaves its fallback count behind — later default-budget queries on
   the same handle add to the totals rather than clearing them (the
   daemon relies on exactly this: its stats reply carries counters
   across queries, and across patches by snapshotting; see
   [test_server.ml]). *)
let test_stats_accumulate_on_shared_engine () =
  let app = Corpus.Gen.generate (Option.get (Corpus.Apps.by_name "XBMC")) in
  let r, solved = Incremental.analyze_solved app in
  let q = Query.create ~hierarchy:app.Framework.App.hierarchy solved in
  let locations = Graph.locations r.Analysis.graph in
  let snap () =
    let s = Query.stats q in
    (s.Query.q_queries, s.Query.q_expanded, s.Query.q_budget_fallbacks, s.Query.q_memo_hits)
  in
  (* round 1: budget-starved queries must record their fallbacks *)
  List.iter (fun node -> ignore (Query.points_to ~budget:0 q node)) locations;
  let q1, e1, b1, _ = snap () in
  Alcotest.(check int) "round 1 queries" (List.length locations) q1;
  Alcotest.(check int) "round 1 never expands" 0 e1;
  Alcotest.(check bool) "round 1 budget fallbacks recorded" true (b1 > 0);
  (* round 2, same handle at default budget: counters accumulate on
     top of round 1 — queries double, fallback count stays (memoized
     fallback rows answer from the memo, adding hits, not fallbacks) *)
  List.iter (fun node -> ignore (Query.points_to q node)) locations;
  let q2, e2, b2, m2 = snap () in
  Alcotest.(check int) "queries accumulate" (2 * List.length locations) q2;
  Alcotest.(check int) "fallbacks never reset" b1 b2;
  Alcotest.(check bool) "memo hits grew" true (m2 > 0);
  Alcotest.(check bool) "still no spontaneous reset" true (e2 >= e1)

let suite =
  [
    Alcotest.test_case "ConnectBot: backward = forward at every budget" `Quick test_connectbot;
    Alcotest.test_case "cyclic app: backward = forward" `Quick test_cyclic;
    Alcotest.test_case "patched apps: warm state queries = cold forward" `Quick test_patched;
    Alcotest.test_case "query stats counters" `Quick test_stats_counters;
    Alcotest.test_case "stats accumulate on a shared engine" `Quick
      test_stats_accumulate_on_shared_engine;
    QCheck_alcotest.to_alcotest test_qcheck_random;
    QCheck_alcotest.to_alcotest test_qcheck_cyclic;
    Alcotest.test_case "corpus: backward = forward (all apps)" `Slow test_corpus;
    Alcotest.test_case "random apps under pool (jobs 1/4)" `Slow test_jobs;
  ]
