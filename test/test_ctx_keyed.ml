(* Context-keyed interned solving: the three-way differential.

   The context-keyed extraction (Config.ctx_keyed, interned engine)
   walks clone bodies in id space instead of re-extracting them as
   [$n]-suffixed program text.  Its correctness oracle is exact
   equivalence with the inlining path: for every app and every depth,
     structural-inlined (Delta)  =  interned-inlined (ctx_keyed=false)
                                 =  context-keyed   (ctx_keyed=true)
   over points-to sets, view relations, holder roots, transitions, and
   the op-level Diff.  The batteries cover the fixed corpus, random
   spec-driven apps, cycle-heavy apps, and the alias-heavy family
   built specifically to make context sensitivity change answers. *)
open Gator

let inlined_structural depth =
  { Config.default with Config.solver = Config.Delta; inline_depth = depth }

let inlined_interned depth =
  { Config.default with Config.solver = Config.Interned; inline_depth = depth; ctx_keyed = false }

let keyed depth =
  { Config.default with Config.solver = Config.Interned; inline_depth = depth; ctx_keyed = true }

(* Every abstract view mentioned by either solution (same collection as
   test_delta's comparator). *)
let all_views (r : Analysis.t) =
  let g = r.graph in
  let add acc view = Graph.View_set.add view acc in
  let acc = List.fold_left add Graph.View_set.empty (Graph.inflated_views g) in
  let acc =
    List.fold_left
      (fun acc node -> List.fold_left add acc (Graph.views_of g node))
      acc (Graph.locations g)
  in
  let acc = List.fold_left add acc (Graph.views_with_listeners g) in
  List.fold_left
    (fun acc holder -> Graph.View_set.union acc (Graph.roots_of_holder g holder))
    acc (Graph.holders g)

let check_same_solution name (a : Analysis.t) (b : Analysis.t) =
  let fail fmt = Alcotest.failf ("%s: " ^^ fmt) name in
  (* Points-to sets over the union of both graphs' locations.  The
     keyed graph's [locations] miss clone nodes with empty solutions
     (clone edges never enter the structural tables), but the inlined
     side lists them all, so the union still covers every clone row. *)
  let locations =
    List.sort_uniq Node.compare (Graph.locations a.graph @ Graph.locations b.graph)
  in
  List.iter
    (fun node ->
      let va = Graph.set_of a.graph node and vb = Graph.set_of b.graph node in
      if not (Graph.VS.equal va vb) then
        fail "points-to sets differ at %a (%d vs %d values)" Node.pp node (Graph.VS.cardinal va)
          (Graph.VS.cardinal vb))
    locations;
  let views = Graph.View_set.union (all_views a) (all_views b) in
  Graph.View_set.iter
    (fun view ->
      if not (Graph.View_set.equal (Graph.children_of a.graph view) (Graph.children_of b.graph view))
      then fail "children differ at %a" Node.pp_view view;
      if not (Graph.Int_set.equal (Graph.ids_of_view a.graph view) (Graph.ids_of_view b.graph view))
      then fail "ids differ at %a" Node.pp_view view;
      if
        not
          (Graph.Listener_set.equal
             (Graph.listeners_of_view a.graph view)
             (Graph.listeners_of_view b.graph view))
      then fail "listeners differ at %a" Node.pp_view view)
    views;
  let holders r = List.sort Node.compare_holder (Graph.holders r.Analysis.graph) in
  let ha = holders a and hb = holders b in
  if not (List.equal (fun x y -> Node.compare_holder x y = 0) ha hb) then
    fail "holder populations differ (%d vs %d)" (List.length ha) (List.length hb);
  List.iter
    (fun holder ->
      if
        not
          (Graph.View_set.equal (Graph.roots_of_holder a.graph holder)
             (Graph.roots_of_holder b.graph holder))
      then fail "roots differ at %a" Node.pp_holder holder)
    ha;
  let ta = List.sort compare (Graph.transitions a.graph) in
  let tb = List.sort compare (Graph.transitions b.graph) in
  if ta <> tb then fail "transitions differ (%d vs %d)" (List.length ta) (List.length tb);
  let d = Diff.compare a b in
  if not (Diff.is_empty d) then fail "op-level diff non-empty:@.%a" Diff.pp d

(* The differential proper: all three engines at the given depth, all
   three pairs compared. *)
let three_way ?(depths = [ 1; 2 ]) name app =
  List.iter
    (fun depth ->
      let tag = Printf.sprintf "%s@cs%d" name depth in
      let rs = Analysis.analyze ~config:(inlined_structural depth) app in
      let ri = Analysis.analyze ~config:(inlined_interned depth) app in
      let rk = Analysis.analyze ~config:(keyed depth) app in
      check_same_solution (tag ^ " interned-inlined vs structural") ri rs;
      check_same_solution (tag ^ " keyed vs structural") rk rs;
      check_same_solution (tag ^ " keyed vs interned-inlined") rk ri;
      (* counter plumbing: only the keyed run mints contexts, and it
         mints exactly as many as the inlining path mints clones *)
      Alcotest.check Alcotest.int (tag ^ " inlined run has no ctx keys") 0
        ri.stats.Solve.ctx_keys;
      if rk.stats.Solve.ctx_count > 0 then
        Alcotest.check Alcotest.bool (tag ^ " ctx_keys >= ctx_count") true
          (rk.stats.Solve.ctx_keys >= rk.stats.Solve.ctx_count))
    depths

let test_connectbot () = three_way "ConnectBot" (Corpus.Connectbot.app ())

let test_corpus () =
  List.iter
    (fun spec -> three_way spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec))
    Corpus.Apps.specs

let test_random_apps () =
  let rng = Util.Prng.create 4102 in
  for i = 1 to 5 do
    let spec = Corpus.Gen.random_spec ~name:(Printf.sprintf "CtxRandom_%d" i) rng in
    three_way spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec)
  done

let test_cycle_heavy () =
  let rng = Util.Prng.create 977 in
  for i = 1 to 4 do
    three_way (Printf.sprintf "CtxCyclic_%d" i)
      (Corpus.Gen.random_cyclic_app ~name:(Printf.sprintf "CtxCyclic_%d" i) rng)
  done

let test_alias_heavy () =
  three_way "AliasFixed" (Corpus.Gen.alias_heavy_app ~groups:4 ~sites_per_group:5 ~seed:11 ());
  let rng = Util.Prng.create 5311 in
  for i = 1 to 4 do
    three_way (Printf.sprintf "CtxAlias_%d" i)
      (Corpus.Gen.random_alias_heavy_app ~name:(Printf.sprintf "CtxAlias_%d" i) rng)
  done

let qcheck_random_differential =
  QCheck.Test.make ~count:20 ~name:"qcheck: three-way differential on random apps"
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let app =
        if seed mod 3 = 0 then Corpus.Gen.random_cyclic_app rng
        else if seed mod 3 = 1 then Corpus.Gen.random_alias_heavy_app rng
        else Corpus.Gen.generate (Corpus.Gen.random_spec rng)
      in
      three_way "qcheck" app;
      true)

(* The precision story the family exists for: context sensitivity
   shrinks the alias-heavy setId receiver sets from the whole group to
   one view per site — and the keyed engine reports the same shrink. *)
let test_alias_precision () =
  let sites = 5 in
  let app = Corpus.Gen.alias_heavy_app ~groups:4 ~sites_per_group:sites ~seed:3 () in
  let avg_recv (r : Analysis.t) =
    let ops = Analysis.ops_of_kind r (fun k -> k = Framework.Api.Set_id) in
    let sized =
      List.filter_map
        (fun op ->
          match List.length (Analysis.op_receiver_views r op) with 0 -> None | n -> Some n)
        ops
    in
    float_of_int (List.fold_left ( + ) 0 sized) /. float_of_int (max 1 (List.length sized))
  in
  let base = avg_recv (Analysis.analyze ~config:Config.default app) in
  let cs2 = avg_recv (Analysis.analyze ~config:(keyed 2) app) in
  let cs2_inlined = avg_recv (Analysis.analyze ~config:(inlined_interned 2) app) in
  Alcotest.check (Alcotest.float 1e-9) "keyed and inlined report the same averages" cs2_inlined cs2;
  Alcotest.check Alcotest.bool
    (Printf.sprintf "baseline merges the group (%.2f >= %d)" base sites)
    true
    (base >= float_of_int sites);
  Alcotest.check (Alcotest.float 1e-9) "cs-2 separates every site" 1.0 cs2

let suite =
  [
    Alcotest.test_case "ConnectBot three-way" `Quick test_connectbot;
    Alcotest.test_case "random apps three-way" `Quick test_random_apps;
    Alcotest.test_case "cycle-heavy three-way" `Quick test_cycle_heavy;
    Alcotest.test_case "alias-heavy three-way" `Quick test_alias_heavy;
    Alcotest.test_case "alias-heavy precision delta" `Quick test_alias_precision;
    Alcotest.test_case "full corpus three-way" `Slow test_corpus;
    QCheck_alcotest.to_alcotest qcheck_random_differential;
  ]
