(* Naive/delta solver equivalence: the semi-naive delta-driven engine
   must produce bit-identical solutions — points-to sets, hierarchies,
   id/listener/onclick relations, holder roots, and transitions — on
   every app we can generate.  The naive loop is the executable
   specification; the delta solver is the optimization under test. *)
open Gator

let naive config = { config with Config.solver = Config.Naive }

let delta config = { config with Config.solver = Config.Delta }

(* Every abstract view mentioned by either solution: inflated views,
   views inside points-to sets, relation keys, and holder roots. *)
let all_views (r : Analysis.t) =
  let g = r.graph in
  let add acc view = Graph.View_set.add view acc in
  let acc = List.fold_left add Graph.View_set.empty (Graph.inflated_views g) in
  let acc =
    List.fold_left
      (fun acc node -> List.fold_left add acc (Graph.views_of g node))
      acc (Graph.locations g)
  in
  let acc = List.fold_left add acc (Graph.views_with_listeners g) in
  let acc = List.fold_left add acc (Graph.views_with_declared_fragments g) in
  List.fold_left
    (fun acc holder -> Graph.View_set.union acc (Graph.roots_of_holder g holder))
    acc (Graph.holders g)

let sorted_holders (r : Analysis.t) = List.sort Node.compare_holder (Graph.holders r.graph)

let check_same_solution name (a : Analysis.t) (b : Analysis.t) =
  let fail fmt = Alcotest.failf ("%s: " ^^ fmt) name in
  (* points-to sets over the union of both graphs' locations *)
  let locations =
    List.sort_uniq Node.compare (Graph.locations a.graph @ Graph.locations b.graph)
  in
  List.iter
    (fun node ->
      let va = Graph.set_of a.graph node and vb = Graph.set_of b.graph node in
      if not (Graph.VS.equal va vb) then
        fail "points-to sets differ at %a (%d vs %d values)" Node.pp node (Graph.VS.cardinal va)
          (Graph.VS.cardinal vb))
    locations;
  (* view relations over the union of both solutions' views *)
  let views = Graph.View_set.union (all_views a) (all_views b) in
  Graph.View_set.iter
    (fun view ->
      if not (Graph.View_set.equal (Graph.children_of a.graph view) (Graph.children_of b.graph view))
      then fail "children differ at %a" Node.pp_view view;
      if not (Graph.Int_set.equal (Graph.ids_of_view a.graph view) (Graph.ids_of_view b.graph view))
      then fail "ids differ at %a" Node.pp_view view;
      if
        not
          (Graph.Listener_set.equal
             (Graph.listeners_of_view a.graph view)
             (Graph.listeners_of_view b.graph view))
      then fail "listeners differ at %a" Node.pp_view view;
      if Graph.onclicks_of a.graph view <> Graph.onclicks_of b.graph view then
        fail "onclick handlers differ at %a" Node.pp_view view;
      if Graph.declared_fragments_of a.graph view <> Graph.declared_fragments_of b.graph view then
        fail "declared fragments differ at %a" Node.pp_view view)
    views;
  (* holders and their roots *)
  let ha = sorted_holders a and hb = sorted_holders b in
  if not (List.equal (fun x y -> Node.compare_holder x y = 0) ha hb) then
    fail "holder populations differ (%d vs %d)" (List.length ha) (List.length hb);
  List.iter
    (fun holder ->
      if
        not
          (Graph.View_set.equal (Graph.roots_of_holder a.graph holder)
             (Graph.roots_of_holder b.graph holder))
      then fail "roots differ at %a" Node.pp_holder holder)
    ha;
  (* activity transitions *)
  let ta = List.sort compare (Graph.transitions a.graph) in
  let tb = List.sort compare (Graph.transitions b.graph) in
  if ta <> tb then fail "transitions differ (%d vs %d)" (List.length ta) (List.length tb)

let check_app ?(config = Config.default) name app =
  let rn = Analysis.analyze ~config:(naive config) app in
  let rd = Analysis.analyze ~config:(delta config) app in
  check_same_solution name rn rd;
  (rn, rd)

let test_connectbot () =
  let app = Corpus.Connectbot.app () in
  ignore (check_app "ConnectBot" app);
  (* equivalence must hold under every ablation, not just defaults *)
  ignore (check_app ~config:Config.baseline "ConnectBot(baseline)" app);
  ignore
    (check_app
       ~config:{ Config.default with listener_callbacks = false }
       "ConnectBot(no callbacks)" app);
  ignore (check_app ~config:{ Config.default with inline_depth = 1 } "ConnectBot(inline 1)" app)

let test_corpus_equivalence () =
  List.iter
    (fun spec ->
      let name = spec.Corpus.Spec.sp_name in
      ignore (check_app name (Corpus.Gen.generate spec)))
    Corpus.Apps.specs

let test_random_apps () =
  let rng = Util.Prng.create 2014 in
  for i = 1 to 5 do
    let spec = Corpus.Gen.random_spec ~name:(Printf.sprintf "DeltaRandom_%d" i) rng in
    ignore (check_app spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec))
  done

(* The acceptance criterion behind the whole exercise: on the largest
   corpus app the delta solver applies strictly fewer op rules than the
   naive [rounds * |ops|] schedule, and its own round count bounds it. *)
let test_xbmc_work_counters () =
  let spec = Option.get (Corpus.Apps.by_name "XBMC") in
  let app = Corpus.Gen.generate spec in
  let rn, rd = check_app "XBMC" app in
  let ops = List.length (Graph.ops rd.graph) in
  Alcotest.check Alcotest.bool "naive applies rounds*|ops|" true
    (rn.stats.Solve.op_applications = rn.stats.Solve.iterations * ops);
  Alcotest.check Alcotest.bool "delta applies fewer ops than naive" true
    (rd.stats.Solve.op_applications < rn.stats.Solve.op_applications);
  Alcotest.check Alcotest.bool "delta beats its own rounds*|ops| bound" true
    (rd.stats.Solve.op_applications < rd.stats.Solve.iterations * ops);
  Alcotest.check Alcotest.bool "delta pushes recorded" true (rd.stats.Solve.delta_pushes > 0);
  Alcotest.check Alcotest.bool "naive records no delta pushes" true
    (rn.stats.Solve.delta_pushes = 0);
  Alcotest.check Alcotest.bool "descendants cache exercised" true
    (rd.stats.Solve.desc_cache_hits > 0)

let test_interned_is_default () =
  Alcotest.check Alcotest.string "default solver" "interned"
    (Config.solver_name Config.default.Config.solver)

let suite =
  [
    Alcotest.test_case "interned solver is the default" `Quick test_interned_is_default;
    Alcotest.test_case "ConnectBot equivalence (all configs)" `Quick test_connectbot;
    Alcotest.test_case "XBMC work counters" `Quick test_xbmc_work_counters;
    Alcotest.test_case "random apps equivalence" `Quick test_random_apps;
    Alcotest.test_case "full corpus equivalence" `Slow test_corpus_equivalence;
  ]
