open Gator

let mid name = { Node.mid_cls = "C"; mid_name = name; mid_arity = 0 }

let site ?(stmt = 0) name = { Node.s_in = mid name; s_stmt = stmt }

let var name v = Node.N_var (mid name, v)

let infl ?(path = []) ?(cls = "View") ?vid name =
  Node.V_infl { Node.v_site = site name; v_layout = "l"; v_path = path; v_cls = cls; v_vid = vid }

let test_add_value_grows_once () =
  let g = Graph.create () in
  let n = var "m" "x" in
  Alcotest.check Alcotest.bool "first add" true (Graph.add_value g n (Node.V_view_id 1));
  Alcotest.check Alcotest.bool "second add" false (Graph.add_value g n (Node.V_view_id 1));
  Alcotest.check Alcotest.int "set size" 1 (Graph.VS.cardinal (Graph.set_of g n))

let test_edges_dedup () =
  let g = Graph.create () in
  let a = var "m" "a" and b = var "m" "b" in
  Graph.add_edge g a b;
  Graph.add_edge g a b;
  Graph.add_edge g ~kind:(Graph.E_cast "Button") a b;
  Alcotest.check Alcotest.int "two distinct edges" 2 (Graph.edge_count g);
  Alcotest.check Alcotest.int "succs" 2 (List.length (Graph.succs g a))

let test_seeds_survive_reset () =
  let g = Graph.create () in
  let n = var "m" "x" in
  Graph.seed g n (Node.V_act "A");
  ignore (Graph.add_value g n (Node.V_view_id 9));
  Graph.reset_sets g;
  Alcotest.check Alcotest.int "sets cleared" 0 (Graph.VS.cardinal (Graph.set_of g n));
  Alcotest.check Alcotest.int "seed kept" 1 (List.length (Graph.seeds g))

let test_children_relation () =
  let g = Graph.create () in
  let p = infl "a" and c1 = infl ~path:[ 0 ] "a" and c2 = infl ~path:[ 1 ] "a" in
  Alcotest.check Alcotest.bool "grew" true (Graph.add_child g ~parent:p ~child:c1);
  Alcotest.check Alcotest.bool "idempotent" false (Graph.add_child g ~parent:p ~child:c1);
  ignore (Graph.add_child g ~parent:p ~child:c2);
  Alcotest.check Alcotest.int "children" 2 (Graph.View_set.cardinal (Graph.children_of g p));
  Alcotest.check Alcotest.bool "parents inverse" true
    (Graph.View_set.mem p (Graph.parents_of g c1))

let test_descendants () =
  let g = Graph.create () in
  let a = infl "a" and b = infl ~path:[ 0 ] "a" and c = infl ~path:[ 0; 0 ] "a" in
  ignore (Graph.add_child g ~parent:a ~child:b);
  ignore (Graph.add_child g ~parent:b ~child:c);
  Alcotest.check Alcotest.int "inclusive" 3
    (Graph.View_set.cardinal (Graph.descendants g ~include_self:true a));
  Alcotest.check Alcotest.int "strict" 2
    (Graph.View_set.cardinal (Graph.descendants g ~include_self:false a));
  Alcotest.check Alcotest.bool "transitive" true
    (Graph.View_set.mem c (Graph.descendants g ~include_self:false a))

let test_descendants_cycle_safe () =
  (* The abstract parent-child relation can be cyclic (unlike the
     concrete heap); BFS must still terminate. *)
  let g = Graph.create () in
  let a = infl "a" and b = infl ~path:[ 0 ] "a" in
  ignore (Graph.add_child g ~parent:a ~child:b);
  ignore (Graph.add_child g ~parent:b ~child:a);
  Alcotest.check Alcotest.int "cycle bounded" 2
    (Graph.View_set.cardinal (Graph.descendants g ~include_self:true a))

let test_view_ids () =
  let g = Graph.create () in
  let v = infl "a" in
  ignore (Graph.add_view_id g v 100);
  ignore (Graph.add_view_id g v 200);
  Alcotest.check Alcotest.bool "both ids" true
    (Graph.Int_set.mem 100 (Graph.ids_of_view g v) && Graph.Int_set.mem 200 (Graph.ids_of_view g v))

let test_holder_roots () =
  let g = Graph.create () in
  let v = infl "a" in
  ignore (Graph.add_holder_root g (Node.H_act "A") v);
  Alcotest.check Alcotest.int "root" 1
    (Graph.View_set.cardinal (Graph.roots_of_holder g (Node.H_act "A")));
  Alcotest.check Alcotest.int "holders" 1 (List.length (Graph.holders g))

let test_listeners_relation () =
  let g = Graph.create () in
  let v = infl "a" in
  let l = Node.L_act "A" in
  ignore (Graph.add_view_listener g v l ~iface:"OnClickListener");
  ignore (Graph.add_view_listener g v l ~iface:"OnKeyListener");
  Alcotest.check Alcotest.int "two registrations" 2
    (Graph.Listener_set.cardinal (Graph.listeners_of_view g v));
  Alcotest.check Alcotest.int "views with listeners" 1 (List.length (Graph.views_with_listeners g))

let test_inflation_memo () =
  let g = Graph.create () in
  let s = site "a" in
  Alcotest.check Alcotest.bool "absent" true (Graph.find_inflation g ~site:s ~layout:"l" = None);
  Graph.record_inflation g ~site:s ~layout:"l" [ infl "a" ];
  Alcotest.check Alcotest.bool "present" true (Graph.find_inflation g ~site:s ~layout:"l" <> None);
  Alcotest.check Alcotest.int "inflated views" 1 (List.length (Graph.inflated_views g))

let test_ops_order () =
  let g = Graph.create () in
  let o1 = Graph.fresh_op g ~kind:Framework.Api.Find_view ~site:(site ~stmt:0 "m") ~recv:(var "m" "x") ~args:[] ~out:None in
  let o2 = Graph.fresh_op g ~kind:Framework.Api.Add_view ~site:(site ~stmt:1 "m") ~recv:(var "m" "y") ~args:[] ~out:None in
  Alcotest.check Alcotest.bool "creation order" true (Graph.ops g = [ o1; o2 ])

let test_locations () =
  let g = Graph.create () in
  Graph.add_edge g (var "m" "a") (var "m" "b");
  Graph.seed g (var "m" "c") (Node.V_act "A");
  Alcotest.check Alcotest.int "locations" 3 (List.length (Graph.locations g))

let test_dot_output () =
  let g = Graph.create () in
  Graph.add_edge g (var "m" "a") (var "m" "b");
  ignore (Graph.add_child g ~parent:(infl "a") ~child:(infl ~path:[ 0 ] "a"));
  let dot = Fmt.str "%a" Graph.pp_dot g in
  Alcotest.check Alcotest.bool "digraph wrapper" true
    (String.length dot > 20
    && String.sub dot 0 7 = "digraph"
    && String.contains dot '}')

(* ------------------------------------------------------------------ *)
(* Frozen flow CSR and its SCC condensation *)

let test_frozen_flow_condensation () =
  let g = Graph.create () in
  let a = var "m" "a" and b = var "m" "b" and c = var "m" "c" and d = var "m" "d" in
  (* a -> b -> c -> a is a direct 3-cycle; d hangs off it through a
     cast edge, which must stay OUT of the condensation *)
  Graph.add_edge g a b;
  Graph.add_edge g b c;
  Graph.add_edge g c a;
  Graph.add_edge g ~kind:(Graph.E_cast "Button") c d;
  let fc = Graph.frozen_flow g in
  let id n = Graph.node_id g n in
  Alcotest.check Alcotest.int "snapshot covers the four nodes" 4 fc.Graph.fc_nodes;
  Alcotest.check Alcotest.int "largest scc is the 3-cycle" 3 fc.Graph.fc_largest_scc;
  Alcotest.check Alcotest.int "two components" 2 fc.Graph.fc_scc_count;
  let ra = fc.Graph.fc_rep.(id a) in
  Alcotest.check Alcotest.int "b joins a's component" ra fc.Graph.fc_rep.(id b);
  Alcotest.check Alcotest.int "c joins a's component" ra fc.Graph.fc_rep.(id c);
  Alcotest.check Alcotest.int "rep is the smallest member" (min (id a) (min (id b) (id c))) ra;
  Alcotest.check Alcotest.int "d is its own singleton" (id d) fc.Graph.fc_rep.(id d);
  (* condensed edges: exactly the cast edge survives — intra-component
     direct edges are subsumed by the component's shared set *)
  let condensed = ref [] in
  for r = 0 to fc.Graph.fc_nodes - 1 do
    for e = fc.Graph.fc_crow.(r) to fc.Graph.fc_crow.(r + 1) - 1 do
      condensed := (r, fc.Graph.fc_cdst.(e), fc.Graph.fc_ckind.(e)) :: !condensed
    done
  done;
  match !condensed with
  | [ (src, dst, k) ] ->
      Alcotest.check Alcotest.int "cast edge leaves the cycle rep" ra src;
      Alcotest.check Alcotest.int "cast edge reaches d" (id d) dst;
      Alcotest.check Alcotest.string "cast symbol kept" "Button" fc.Graph.fc_cast_names.(k)
  | es -> Alcotest.failf "expected exactly the cast edge, got %d condensed edges" (List.length es)

(* Regression: the [frozen_flow] memo is keyed on the edge count, so
   interner growth without new edges must serve the old snapshot (ids
   at or above [fc_nodes] are singleton components by construction),
   while adding an edge must rebuild over the grown node pool. *)
let test_frozen_flow_memo_invalidation () =
  let g = Graph.create () in
  let a = var "m" "a" and b = var "m" "b" in
  Graph.add_edge g a b;
  let fc0 = Graph.frozen_flow g in
  Alcotest.check Alcotest.int "snapshot covers both nodes" 2 fc0.Graph.fc_nodes;
  (* grow the interner without touching edges: memo hit, same snapshot *)
  let late = var "m" "late" in
  let late_id = Graph.node_id g late in
  Alcotest.check Alcotest.bool "late id falls outside the snapshot" true
    (late_id >= fc0.Graph.fc_nodes);
  let fc1 = Graph.frozen_flow g in
  Alcotest.check Alcotest.bool "memo hit serves the same snapshot" true (fc0 == fc1);
  (* a new edge invalidates the memo: the rebuild covers the late node *)
  Graph.add_edge g late a;
  let fc2 = Graph.frozen_flow g in
  Alcotest.check Alcotest.bool "edge growth rebuilds" true (fc1 != fc2);
  Alcotest.check Alcotest.int "rebuild covers the late node" 3 fc2.Graph.fc_nodes;
  Alcotest.check Alcotest.int "late node is now a tracked singleton" late_id
    fc2.Graph.fc_rep.(late_id)

let suite =
  [
    Alcotest.test_case "add_value grows once" `Quick test_add_value_grows_once;
    Alcotest.test_case "edge dedup by kind" `Quick test_edges_dedup;
    Alcotest.test_case "reset keeps seeds" `Quick test_seeds_survive_reset;
    Alcotest.test_case "children relation" `Quick test_children_relation;
    Alcotest.test_case "descendants closure" `Quick test_descendants;
    Alcotest.test_case "descendants on cyclic relation" `Quick test_descendants_cycle_safe;
    Alcotest.test_case "view ids" `Quick test_view_ids;
    Alcotest.test_case "holder roots" `Quick test_holder_roots;
    Alcotest.test_case "listener registrations" `Quick test_listeners_relation;
    Alcotest.test_case "inflation memo" `Quick test_inflation_memo;
    Alcotest.test_case "op creation order" `Quick test_ops_order;
    Alcotest.test_case "locations" `Quick test_locations;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "frozen flow: scc condensation" `Quick test_frozen_flow_condensation;
    Alcotest.test_case "frozen flow: memo invalidation" `Quick
      test_frozen_flow_memo_invalidation;
  ]
