(* Incremental re-analysis: the warm path must be BIT-IDENTICAL to a
   from-scratch solve of the patched app — same op solutions, same
   interactions, same transitions — across the patch vocabulary
   (add-handler, remove-view, rename-id, cycle-splitting edits), across
   warm chains, and across a snapshot round-trip.  Corrupted or stale
   state must degrade to a full solve surfaced in [stats.fallback],
   never a crash. *)
open Gator

(* The corpus app under patching: deterministic names (Inc_Activity,
   Inc_Listener, chain variables chN_I) that the JSON patch files in
   incremental/ target. *)
let inc_app () =
  Corpus.Gen.cyclic_app ~name:"Inc" ~chains:2 ~chain_len:6 ~two_cycles:1 ~bridges:2 ~seed:7 ()

let find_method (app : Framework.App.t) ~cls ~name ~arity =
  List.find_opt (fun (c : Jir.Ast.cls) -> c.c_name = cls) app.program.p_classes
  |> Option.map (fun (c : Jir.Ast.cls) ->
         List.find_opt
           (fun (m : Jir.Ast.meth) -> m.m_name = name && List.length m.m_params = arity)
           c.c_methods)
  |> Option.join

let apply_patch app patch =
  match Corpus.Patch.apply app patch with
  | Ok app' -> app'
  | Error e -> Alcotest.failf "patch failed to apply: %s" e

let load_patch file =
  (* `dune runtest` runs in test/, `dune exec test/main.exe` in the
     project root — accept either. *)
  let candidates = [ Filename.concat "incremental" file; Filename.concat "test/incremental" file ] in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.failf "patch %s not found" file
  in
  match Corpus.Patch.load path with
  | Ok p -> p
  | Error e -> Alcotest.failf "patch %s failed to parse: %s" file e

(* Bit-identity: op-solution diff plus order-insensitive interaction
   and transition comparison. *)
let check_same_solution ~msg (cold : Analysis.t) (warm : Analysis.t) =
  let d = Diff.compare cold warm in
  if not (Diff.is_empty d) then Alcotest.failf "%s: %a" msg Diff.pp d;
  let ix r =
    List.sort compare (List.map (Fmt.str "%a" Analysis.pp_interaction) (Analysis.interactions r))
  in
  Alcotest.check (Alcotest.list Alcotest.string) (msg ^ ": interactions") (ix cold) (ix warm);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    (msg ^ ": transitions")
    (List.sort compare (Analysis.transitions cold))
    (List.sort compare (Analysis.transitions warm))

let check_warm ~msg (r : Analysis.t) =
  Alcotest.check Alcotest.bool (msg ^ ": warm_solve") true r.stats.Solve.warm_solve;
  Alcotest.check Alcotest.bool (msg ^ ": no fallback") true (r.stats.Solve.fallback = None)

(* Warm-solve [patch] applied to [app] against the captured [prev];
   check bit-identity against a cold analysis of the patched app. *)
let run_patch ~msg ?config app prev patch =
  let app' = apply_patch app patch in
  let warm, solved' = Incremental.analyze_incremental ?config ~prev app' in
  check_warm ~msg warm;
  check_same_solution ~msg (Analysis.analyze ?config app') warm;
  (warm, solved')

(* ------------------------------------------------------------------ *)
(* Warm solves *)

let test_warm_identity () =
  let app = inc_app () in
  let _, solved = Incremental.analyze_solved app in
  let warm, _ = Incremental.analyze_incremental ~prev:solved app in
  check_warm ~msg:"identity" warm;
  Alcotest.check Alcotest.int "no dirty components" 0 warm.stats.Solve.dirty_comps;
  Alcotest.check Alcotest.bool "components reused" true (warm.stats.Solve.reused_comps > 0);
  check_same_solution ~msg:"identity" (Analysis.analyze app) warm

let test_patch_add_handler () =
  let app = inc_app () in
  let _, solved = Incremental.analyze_solved app in
  ignore (run_patch ~msg:"add-handler" app solved (load_patch "add_handler.json"))

let test_patch_rename_id () =
  let app = inc_app () in
  let _, solved = Incremental.analyze_solved app in
  let warm, _ = run_patch ~msg:"rename-id" app solved (load_patch "rename_id.json") in
  (* a seed-only patch cannot dirty the whole condensation (locality
     proper — dirty ≪ total — is measured on XBMC in the benches) *)
  Alcotest.check Alcotest.bool "some components stay clean" true
    (warm.stats.Solve.dirty_comps < warm.stats.Solve.scc_count
    && warm.stats.Solve.reused_comps > 0)

let test_patch_remove_view () =
  let app = inc_app () in
  (* guard the hard-coded statement index against generator drift *)
  (match find_method app ~cls:"Inc_Activity" ~name:"onCreate" ~arity:0 with
  | Some m ->
      Alcotest.check Alcotest.bool "index 23 is the Button allocation" true
        (List.nth_opt m.Jir.Ast.m_body 23 = Some (Jir.Ast.New ("w0", "Button")))
  | None -> Alcotest.fail "Inc_Activity.onCreate not found");
  let _, solved = Incremental.analyze_solved app in
  ignore (run_patch ~msg:"remove-view" app solved (load_patch "remove_view.json"))

let test_patch_cycle_split () =
  let app = inc_app () in
  (match find_method app ~cls:"Inc_Activity" ~name:"onCreate" ~arity:0 with
  | Some m ->
      Alcotest.check Alcotest.bool "index 17 closes ring 1" true
        (List.nth_opt m.Jir.Ast.m_body 17 = Some (Jir.Ast.Copy ("ch1_0", "ch1_5")))
  | None -> Alcotest.fail "Inc_Activity.onCreate not found");
  let _, solved = Incremental.analyze_solved app in
  ignore (run_patch ~msg:"cycle-split" app solved (load_patch "cycle_split.json"))

let test_patch_chain () =
  (* warm-of-warm: carried-forward write targets must keep later
     invalidation sound *)
  let app = inc_app () in
  let _, solved0 = Incremental.analyze_solved app in
  let app1 = apply_patch app (load_patch "rename_id.json") in
  let warm1, solved1 = Incremental.analyze_incremental ~prev:solved0 app1 in
  check_warm ~msg:"chain step 1" warm1;
  let app2 = apply_patch app1 (load_patch "cycle_split.json") in
  let warm2, _ = Incremental.analyze_incremental ~prev:solved1 app2 in
  check_warm ~msg:"chain step 2" warm2;
  check_same_solution ~msg:"chain" (Analysis.analyze app2) warm2

let test_config_change_falls_back () =
  let app = inc_app () in
  let _, solved = Incremental.analyze_solved app in
  let config = { Config.default with cast_filtering = false } in
  let warm, _ = Incremental.analyze_incremental ~config ~prev:solved app in
  Alcotest.check Alcotest.bool "fell back" true (warm.stats.Solve.fallback <> None);
  Alcotest.check Alcotest.bool "not warm" false warm.stats.Solve.warm_solve;
  check_same_solution ~msg:"config fallback" (Analysis.analyze ~config app) warm

let test_methods_changed_not_fallback () =
  (* adding a method is NOT a fallback: resolve-dependent ops are
     re-run instead *)
  let app = inc_app () in
  let _, solved = Incremental.analyze_solved app in
  let patch =
    [
      Corpus.Patch.Add_method
        { cls = "Inc_Listener"; name = "helper"; params = [ "x" ]; body = [ Jir.Ast.Return None ] };
    ]
  in
  ignore (run_patch ~msg:"add-method" app solved patch)

(* ------------------------------------------------------------------ *)
(* Edit-script audit: every relation kind shows up in the diff *)

let test_edit_script_kinds () =
  let app = inc_app () in
  let it = Solve.solved_interner (snd (Incremental.analyze_solved app)) in
  let shape_of app = Solve.shape_of_graph (Extract.run ~interner:it Config.default app) in
  let base = shape_of app in
  let empty = Diff.edit_script ~old_:base ~new_:(shape_of app) in
  Alcotest.check Alcotest.bool "identity script is empty" true (Diff.edit_script_is_empty empty);
  (* removing a cast statement must surface as a removed CAST edge *)
  let no_bridge =
    apply_patch app
      [ Corpus.Patch.Remove_stmt { cls = "Inc_Activity"; meth = "onCreate"; arity = 0; index = 21 } ]
  in
  let es = Diff.edit_script ~old_:base ~new_:(shape_of no_bridge) in
  Alcotest.check Alcotest.bool "cast edge removal detected" true
    (Array.exists (fun (_, k, _) -> k <> -1) es.Solve.es_removed_edges);
  (* renaming an id read must surface as seed edits, not edge edits *)
  let renamed = apply_patch app (load_patch "rename_id.json") in
  let es = Diff.edit_script ~old_:base ~new_:(shape_of renamed) in
  Alcotest.check Alcotest.bool "seed removal detected" true
    (Array.length es.Solve.es_removed_seeds > 0);
  Alcotest.check Alcotest.bool "seed addition detected" true
    (Array.length es.Solve.es_added_seeds > 0);
  Alcotest.check Alcotest.int "no edge edits for a seed patch" 0
    (Array.length es.Solve.es_removed_edges + Array.length es.Solve.es_added_edges);
  (* adding a call adds an op, matched ops keep their indices *)
  let added = apply_patch app (load_patch "add_handler.json") in
  let es = Diff.edit_script ~old_:base ~new_:(shape_of added) in
  Alcotest.check Alcotest.bool "added op detected" true
    (Array.exists (fun x -> x < 0) es.Solve.es_new_to_old);
  Alcotest.check Alcotest.bool "old ops all survive" true
    (Array.for_all (fun x -> x >= 0) es.Solve.es_old_to_new)

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let test_snapshot_roundtrip () =
  let app = inc_app () in
  let _, solved = Incremental.analyze_solved app in
  let path = Filename.temp_file "gator_snap" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save solved path;
      match Snapshot.load path with
      | Error e -> Alcotest.failf "round-trip load failed: %s" e
      | Ok loaded ->
          let app' = apply_patch app (load_patch "add_handler.json") in
          let warm, _ = Incremental.analyze_incremental ~prev:loaded app' in
          check_warm ~msg:"snapshot warm" warm;
          check_same_solution ~msg:"snapshot warm" (Analysis.analyze app') warm)

let test_snapshot_corrupt () =
  let path = Filename.temp_file "gator_snap" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "{not json!");
      (match Snapshot.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt file loaded");
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "{\"magic\": \"SOMETHING-ELSE\", \"version\": 1}");
      match Snapshot.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "foreign file loaded")

let test_snapshot_stale_version () =
  let app = inc_app () in
  let _, solved = Incremental.analyze_solved app in
  let stale =
    match Snapshot.to_json solved with
    | Util.Json.Obj fields ->
        Util.Json.Obj
          (List.map (function "version", _ -> ("version", Util.Json.Int 999) | f -> f) fields)
    | _ -> Alcotest.fail "snapshot is not an object"
  in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  match Snapshot.of_json stale with
  | Error e ->
      Alcotest.check Alcotest.bool "reason names the version" true (contains ~sub:"version" e)
  | Ok _ -> Alcotest.fail "stale version accepted"

(* Pre-split snapshots: files written before the shared interner tier
   existed carry no [shared_intern] config field.  They must load
   under the two-tier build — the codec defaults the missing field to
   the shared tier, whose ids coincide with what the positional pool
   replay reassigns — and warm-solve bit-identically.  A present but
   malformed field is still a clean, named refusal. *)
let test_snapshot_pre_split_compat () =
  let app = inc_app () in
  let _, solved = Incremental.analyze_solved app in
  let strip_shared_intern = function
    | "config", Util.Json.Obj cfields ->
        ("config", Util.Json.Obj (List.filter (fun (k, _) -> k <> "shared_intern") cfields))
    | f -> f
  in
  let pre_split =
    match Snapshot.to_json solved with
    | Util.Json.Obj fields -> Util.Json.Obj (List.map strip_shared_intern fields)
    | _ -> Alcotest.fail "snapshot is not an object"
  in
  (match Snapshot.of_json pre_split with
  | Error e -> Alcotest.failf "pre-split snapshot refused: %s" e
  | Ok loaded ->
      let app' = apply_patch app (load_patch "add_handler.json") in
      let warm, _ = Incremental.analyze_incremental ~prev:loaded app' in
      check_warm ~msg:"pre-split warm" warm;
      check_same_solution ~msg:"pre-split warm" (Analysis.analyze app') warm);
  let mangled = function
    | "config", Util.Json.Obj cfields ->
        ( "config",
          Util.Json.Obj
            (List.map
               (function
                 | "shared_intern", _ -> ("shared_intern", Util.Json.Int 42) | f -> f)
               cfields) )
    | f -> f
  in
  let bad =
    match Snapshot.to_json solved with
    | Util.Json.Obj fields -> Util.Json.Obj (List.map mangled fields)
    | _ -> Alcotest.fail "snapshot is not an object"
  in
  match Snapshot.of_json bad with
  | Error e ->
      let contains ~sub s =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.check Alcotest.bool "reason names the field" true (contains ~sub:"shared_intern" e)
  | Ok _ -> Alcotest.fail "malformed shared_intern accepted"

(* Context-keyed context sensitivity and warm starts: clone
   constraints live only in the id-level stores, so the structural
   shape diff cannot see them and the warm guard must refuse — the
   documented fallback-to-full-solve path for cs snapshots.  The
   fallback, including across a snapshot round-trip of the keyed
   solved state, stays bit-identical to a cold cs solve. *)
let test_ctx_keyed_falls_back () =
  let config = { Config.default with inline_depth = 2 } in
  (* identity warm request on an app that actually mints contexts
     (the cyclic app has no inlinable app-level calls): refused but
     identical *)
  let alias = Corpus.Gen.alias_heavy_app ~groups:3 ~sites_per_group:3 ~seed:7 () in
  let _, solved_alias = Incremental.analyze_solved ~config alias in
  let warm, _ = Incremental.analyze_incremental ~config ~prev:solved_alias alias in
  Alcotest.check Alcotest.bool "fell back" true (warm.stats.Solve.fallback <> None);
  Alcotest.check Alcotest.bool "not warm" false warm.stats.Solve.warm_solve;
  Alcotest.check Alcotest.bool "contexts reported" true (warm.stats.Solve.ctx_count > 0);
  check_same_solution ~msg:"cs identity fallback" (Analysis.analyze ~config alias) warm;
  let app = inc_app () in
  let _, solved = Incremental.analyze_solved ~config app in
  (* keyed solved state round-trips (clone nodes are ordinary pool
     entries), and a warm request against the loaded state is again a
     clean full solve of the patched app *)
  let path = Filename.temp_file "gator_snap_cs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save solved path;
      match Snapshot.load path with
      | Error e -> Alcotest.failf "cs snapshot load failed: %s" e
      | Ok loaded ->
          let app' = apply_patch app (load_patch "add_handler.json") in
          let warm', _ = Incremental.analyze_incremental ~config ~prev:loaded app' in
          Alcotest.check Alcotest.bool "snapshot fell back" true
            (warm'.stats.Solve.fallback <> None);
          check_same_solution ~msg:"cs snapshot fallback" (Analysis.analyze ~config app') warm');
  (* the inlining twin (ctx_keyed = false) has structural clone edges,
     so its warm path still works end to end *)
  let config_inl = { config with ctx_keyed = false } in
  let _, solved_inl = Incremental.analyze_solved ~config:config_inl app in
  let app' = apply_patch app (load_patch "rename_id.json") in
  let warm_inl, _ = Incremental.analyze_incremental ~config:config_inl ~prev:solved_inl app' in
  check_warm ~msg:"inlined cs warm" warm_inl;
  check_same_solution ~msg:"inlined cs warm" (Analysis.analyze ~config:config_inl app') warm_inl

let test_fallback_surfaced () =
  (* the driver path for a bad state file: full solve with the reason
     in stats, not a crash *)
  let app = inc_app () in
  let r, _ = Incremental.analyze_solved ~fallback:"corrupt state file: boom" app in
  Alcotest.check Alcotest.bool "fallback surfaced" true
    (r.stats.Solve.fallback = Some "corrupt state file: boom");
  Alcotest.check Alcotest.bool "not warm" false r.stats.Solve.warm_solve

(* ------------------------------------------------------------------ *)
(* Property: random cyclic apps, random edits, warm == cold *)

let qcheck_warm_equals_cold =
  QCheck.Test.make ~name:"warm re-solve equals cold solve on random patches" ~count:25
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let app = Corpus.Gen.random_cyclic_app rng in
      let edit =
        match Util.Prng.int rng 3 with
        | 0 -> Corpus.Patch.Rename_view_id { from_ = "vid_leaf"; to_ = "vid_root" }
        | 1 ->
            let body_len =
              match find_method app ~cls:"Cyclic_Activity" ~name:"onCreate" ~arity:0 with
              | Some m -> List.length m.Jir.Ast.m_body
              | None -> QCheck.Test.fail_report "Cyclic_Activity.onCreate not found"
            in
            Corpus.Patch.Remove_stmt
              {
                cls = "Cyclic_Activity";
                meth = "onCreate";
                arity = 0;
                index = Util.Prng.int rng body_len;
              }
        | _ ->
            Corpus.Patch.Add_stmt
              {
                cls = "Cyclic_Activity";
                meth = "onCreate";
                arity = 0;
                stmt = Jir.Ast.Copy ("ch0_1", "ch0_0");
              }
      in
      let _, solved = Incremental.analyze_solved app in
      let app' =
        match Corpus.Patch.apply app [ edit ] with
        | Ok app' -> app'
        | Error e -> QCheck.Test.fail_reportf "patch failed: %s" e
      in
      let warm, _ = Incremental.analyze_incremental ~prev:solved app' in
      if not warm.stats.Solve.warm_solve then QCheck.Test.fail_report "solve was not warm";
      let d = Diff.compare (Analysis.analyze app') warm in
      if not (Diff.is_empty d) then QCheck.Test.fail_reportf "solutions differ: %a" Diff.pp d;
      true)

let qcheck_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot round-trip preserves warm solves" ~count:10
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Util.Prng.create seed in
      let app = Corpus.Gen.random_cyclic_app rng in
      let _, solved = Incremental.analyze_solved app in
      match Snapshot.of_json (Snapshot.to_json solved) with
      | Error e -> QCheck.Test.fail_reportf "round trip failed: %s" e
      | Ok loaded ->
          let app' =
            match
              Corpus.Patch.apply app
                [ Corpus.Patch.Rename_view_id { from_ = "vid_leaf"; to_ = "vid_root" } ]
            with
            | Ok app' -> app'
            | Error e -> QCheck.Test.fail_reportf "patch failed: %s" e
          in
          let warm, _ = Incremental.analyze_incremental ~prev:loaded app' in
          if not warm.stats.Solve.warm_solve then QCheck.Test.fail_report "solve was not warm";
          let d = Diff.compare (Analysis.analyze app') warm in
          if not (Diff.is_empty d) then QCheck.Test.fail_reportf "solutions differ: %a" Diff.pp d;
          true)

let suite =
  [
    Alcotest.test_case "warm identity re-solve" `Quick test_warm_identity;
    Alcotest.test_case "patch: add handler" `Quick test_patch_add_handler;
    Alcotest.test_case "patch: rename id" `Quick test_patch_rename_id;
    Alcotest.test_case "patch: remove view" `Quick test_patch_remove_view;
    Alcotest.test_case "patch: cycle split" `Quick test_patch_cycle_split;
    Alcotest.test_case "patch chain (warm of warm)" `Quick test_patch_chain;
    Alcotest.test_case "config change falls back" `Quick test_config_change_falls_back;
    Alcotest.test_case "method addition stays warm" `Quick test_methods_changed_not_fallback;
    Alcotest.test_case "edit script covers all kinds" `Quick test_edit_script_kinds;
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot corrupt input" `Quick test_snapshot_corrupt;
    Alcotest.test_case "snapshot stale version" `Quick test_snapshot_stale_version;
    Alcotest.test_case "snapshot pre-split compatibility" `Quick test_snapshot_pre_split_compat;
    Alcotest.test_case "fallback surfaced in stats" `Quick test_fallback_surfaced;
    Alcotest.test_case "context-keyed cs falls back" `Quick test_ctx_keyed_falls_back;
    QCheck_alcotest.to_alcotest qcheck_warm_equals_cold;
    QCheck_alcotest.to_alcotest qcheck_snapshot_roundtrip;
  ]
