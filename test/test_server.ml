(* The query daemon: protocol robustness (hostile frames and payloads
   must produce structured error envelopes and leave the daemon
   serving), a qcheck byte-mutation fuzzer over valid request frames,
   concurrency/consistency (queries racing an incremental patch see
   exactly the pre- or post-patch answer, identified by generation),
   and crash recovery (a restarted daemon reloads Snapshot state and
   answers identically without re-solving). *)

module J = Util.Json
module P = Server.Protocol

let to_s = J.to_string

let no_log = false

(* Dispatch-level harness: the daemon's full request handling without
   a socket. *)
let mk_server ?state_dir () =
  Server.Daemon.create ~log:no_log ?state_dir ~socket:"/nonexistent/unused.sock" ()

let handle t req = Server.Daemon.handle t (to_s req)

let handle_json t req =
  match J.of_string (handle t req) with
  | Ok j -> j
  | Error e -> Alcotest.failf "daemon produced unparsable response: %s" e

let error_code response =
  match J.member "error" response with
  | Some e -> ( match J.member "code" e with Some (J.String c) -> Some c | _ -> None)
  | None -> None

let ok_payload response = J.member "ok" response

let generation response =
  match J.member "generation" response with Some (J.Int g) -> Some g | _ -> None

let req_load app = J.Obj [ ("method", J.String "load"); ("app", J.String app) ]

let req_points_to ?budget app node =
  P.request_to_json (P.R_points_to { app; node; budget })

let req_ping = J.Obj [ ("method", J.String "ping") ]

(* ------------------------------------------------------------------ *)
(* Dispatch: happy path and error envelopes *)

let test_dispatch () =
  let t = mk_server () in
  (* ping before anything is loaded *)
  Alcotest.(check (option string)) "ping" None (error_code (handle_json t req_ping));
  (* queries against unloaded apps are structured errors *)
  Alcotest.(check (option string))
    "unknown app" (Some "unknown-app")
    (error_code (handle_json t (req_points_to "ConnectBot" (Gator.Node.N_field "f"))));
  Alcotest.(check (option string))
    "unknown corpus app on load" (Some "unknown-app")
    (error_code (handle_json t (req_load "NoSuchApp")));
  (* load, then answers must match a local Query over the same app *)
  let load1 = handle_json t (req_load "ConnectBot") in
  Alcotest.(check (option string)) "load ok" None (error_code load1);
  Alcotest.(check (option int)) "fresh load is generation 0" (Some 0) (generation load1);
  let app = Corpus.Gen.generate (Option.get (Corpus.Apps.by_name "ConnectBot")) in
  let r, solved = Gator.Incremental.analyze_solved app in
  let q = Gator.Query.create ~hierarchy:app.Framework.App.hierarchy solved in
  List.iter
    (fun node ->
      let expected =
        J.List
          (List.map
             (fun v -> J.String (Fmt.str "%a" Gator.Node.pp_value v))
             (Option.get (Gator.Query.points_to q node)))
      in
      let response = handle_json t (req_points_to "ConnectBot" node) in
      match ok_payload response with
      | Some got ->
          if not (J.equal expected got) then
            Alcotest.failf "daemon answer differs at %a:@.  local  %s@.  daemon %s" Gator.Node.pp
              node (to_s expected) (to_s got)
      | None -> Alcotest.failf "daemon errored at %a: %s" Gator.Node.pp node (to_s response))
    (Gator.Graph.locations r.Gator.Analysis.graph);
  (* unknown node: error envelope, daemon keeps serving *)
  Alcotest.(check (option string))
    "unknown node" (Some "unknown-node")
    (error_code (handle_json t (req_points_to "ConnectBot" (Gator.Node.N_field "zzz_no"))));
  (* malformed payloads *)
  let bad payload =
    match J.of_string (Server.Daemon.handle t payload) with
    | Ok j -> error_code j
    | Error e -> Alcotest.failf "unparsable response to %S: %s" payload e
  in
  Alcotest.(check (option string)) "not json" (Some "parse") (bad "{nope");
  Alcotest.(check (option string)) "no method" (Some "bad-params") (bad "{}");
  Alcotest.(check (option string)) "non-object" (Some "bad-params") (bad "42");
  Alcotest.(check (option string))
    "unknown method" (Some "unknown-method")
    (bad (to_s (J.Obj [ ("method", J.String "frobnicate") ])));
  Alcotest.(check (option string))
    "bad node params" (Some "bad-params")
    (bad
       (to_s
          (J.Obj
             [
               ("method", J.String "points-to-of-node");
               ("app", J.String "ConnectBot");
               ("node", J.Obj [ ("var", J.Obj [ ("cls", J.Int 3) ]) ]);
             ])));
  Alcotest.(check (option string))
    "bad patch" (Some "bad-params")
    (bad
       (to_s
          (J.Obj
             [
               ("method", J.String "patch");
               ("app", J.String "ConnectBot");
               ("edits", J.List [ J.Obj [ ("edit", J.String "no-such-edit") ] ]);
             ])));
  (* ...and the daemon still serves after every one of them *)
  Alcotest.(check (option string)) "still serving" None (error_code (handle_json t req_ping))

(* Operand codecs round-trip through JSON. *)
let test_codecs () =
  let mid = { Gator.Node.mid_cls = "C"; mid_name = "m"; mid_arity = 2 } in
  let nodes =
    [
      Gator.Node.N_var (mid, "x");
      Gator.Node.N_field "listeners";
      Gator.Node.N_ret { mid with Gator.Node.mid_arity = 0 };
    ]
  in
  List.iter
    (fun n ->
      match P.node_of_json (P.node_to_json n) with
      | Ok n' -> Alcotest.(check bool) "node round-trips" true (Gator.Node.equal n n')
      | Error (_, e) -> Alcotest.failf "node codec: %s" e)
    nodes;
  let listeners =
    [
      Gator.Node.L_act "MainActivity";
      Gator.Node.L_alloc
        { Gator.Node.a_cls = "L"; a_site = { Gator.Node.s_in = mid; s_stmt = 7 } };
    ]
  in
  List.iter
    (fun l ->
      match P.listener_of_json (P.listener_to_json l) with
      | Ok l' -> Alcotest.(check bool) "listener round-trips" true (Gator.Node.equal_listener l l')
      | Error (_, e) -> Alcotest.failf "listener codec: %s" e)
    listeners

(* ------------------------------------------------------------------ *)
(* Socket-level robustness: hostile frames against a live daemon *)

let temp_socket () =
  let path = Filename.temp_file "gator_test" ".sock" in
  Sys.remove path;
  path

let with_daemon ?state_dir f =
  let socket = temp_socket () in
  let t = Server.Daemon.create ~log:no_log ?state_dir ~socket () in
  let thread = Thread.create (fun () -> Server.Daemon.run t) () in
  (* wait out the bind: raw-byte tests connect without retrying *)
  (match Server.Client.connect_retry socket with
  | Ok c -> Server.Client.close c
  | Error e -> Alcotest.failf "daemon never bound %s: %s" socket e);
  Fun.protect
    ~finally:(fun () ->
      (* best-effort shutdown in case the test failed before its own *)
      ignore (Server.Client.request ~socket (P.request_to_json P.R_shutdown));
      Thread.join thread;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f socket)

let expect_ok socket req =
  match Server.Client.request ~socket req with
  | Ok response ->
      (match J.member "error" response with
      | Some _ -> Alcotest.failf "unexpected error: %s" (to_s response)
      | None -> ());
      response
  | Error e -> Alcotest.failf "transport failure: %s" e

(* Write raw bytes as a client, half-close, and drain whatever the
   daemon answers (possibly nothing).  Must never hang: the daemon
   responds or closes. *)
let raw_exchange socket bytes =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
      ignore (Unix.write fd (Bytes.of_string bytes) 0 (String.length bytes));
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Bytes.create 4096 in
      let out = Buffer.create 256 in
      let rec drain () =
        match Unix.read fd buf 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes out buf 0 n;
            drain ()
        | exception _ -> ()
      in
      drain ();
      Buffer.contents out)

(* The error envelope inside a framed response, if one came back. *)
let envelope_code raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some i -> (
      match J.of_string (String.sub raw (i + 1) (String.length raw - i - 1)) with
      | Ok j -> error_code j
      | Error _ -> None)

let test_hostile_frames () =
  with_daemon (fun socket ->
      let ping () =
        Alcotest.(check (option string)) "daemon still serves" None
          (error_code (expect_ok socket req_ping))
      in
      (* well-formed frame, hostile payloads -> error envelopes *)
      let framed payload = Printf.sprintf "%d\n%s" (String.length payload) payload in
      Alcotest.(check (option string))
        "malformed json" (Some "parse")
        (envelope_code (raw_exchange socket (framed "{broken")));
      ping ();
      Alcotest.(check (option string))
        "binary garbage payload" (Some "parse")
        (envelope_code (raw_exchange socket (framed "\x00\xff\x01\xfe")));
      ping ();
      (* broken framing *)
      Alcotest.(check (option string))
        "non-numeric length line" (Some "bad-frame")
        (envelope_code (raw_exchange socket "banana\n{}"));
      ping ();
      Alcotest.(check (option string))
        "truncated payload" (Some "bad-frame")
        (envelope_code (raw_exchange socket "1000\n{\"method\":\"ping\"}"));
      ping ();
      Alcotest.(check (option string))
        "oversized declaration" (Some "oversized")
        (envelope_code (raw_exchange socket (Printf.sprintf "%d\n" (P.max_frame + 1))));
      ping ();
      Alcotest.(check (option string))
        "length line overflow" (Some "bad-frame")
        (envelope_code (raw_exchange socket "99999999999999999999\n"));
      ping ();
      (* empty write, immediate close *)
      ignore (raw_exchange socket "");
      ping ();
      (* several requests on one connection keep working *)
      (match Server.Client.connect socket with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              List.iter
                (fun _ ->
                  match Server.Client.rpc c req_ping with
                  | Ok j -> Alcotest.(check (option string)) "pipelined ping" None (error_code j)
                  | Error e -> Alcotest.failf "pipelined rpc: %s" e)
                [ 1; 2; 3 ]));
      ping ())

(* qcheck fuzzer: byte mutations of valid request frames.  Whatever
   the bytes decode to, the daemon must answer every mutation with
   SOME response (or drop the connection) and still serve a ping. *)
let test_fuzz =
  QCheck.Test.make ~count:60 ~name:"byte-mutation fuzz over valid frames"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_daemon (fun socket ->
          let rng = Util.Prng.create seed in
          let valid =
            [
              to_s req_ping;
              to_s (req_load "ConnectBot");
              to_s (req_points_to "ConnectBot" (Gator.Node.N_field "f"));
              to_s
                (P.request_to_json
                   (P.R_patch
                      {
                        app = "ConnectBot";
                        edits =
                          J.List
                            [
                              J.Obj
                                [
                                  ("edit", J.String "rename_view_id");
                                  ("from", J.String "a");
                                  ("to", J.String "b");
                                ];
                            ];
                      }));
            ]
          in
          for _ = 1 to 5 do
            let payload = Bytes.of_string (List.nth valid (Util.Prng.int rng (List.length valid))) in
            let mutations = 1 + Util.Prng.int rng 4 in
            for _ = 1 to mutations do
              Bytes.set payload
                (Util.Prng.int rng (Bytes.length payload))
                (Char.chr (Util.Prng.int rng 256))
            done;
            let payload = Bytes.to_string payload in
            (* sometimes corrupt the framing too *)
            let frame =
              if Util.Prng.chance rng 0.3 then
                String.init (1 + Util.Prng.int rng 40) (fun _ -> Char.chr (Util.Prng.int rng 256))
              else Printf.sprintf "%d\n%s" (String.length payload) payload
            in
            ignore (raw_exchange socket frame);
            match Server.Client.request ~socket req_ping with
            | Ok j ->
                if error_code j <> None then
                  Alcotest.failf "daemon degraded after fuzz frame %S" frame
            | Error e -> Alcotest.failf "daemon unreachable after fuzz frame %S: %s" frame e
          done;
          true))

(* ------------------------------------------------------------------ *)
(* Concurrency: queries racing a patch observe pre- OR post-patch
   state, never a torn mix, and the generation tells which. *)

let xbmc () = Corpus.Gen.generate (Option.get (Corpus.Apps.by_name "XBMC"))

let patch_edits =
  J.List
    [
      J.Obj
        [
          ("edit", J.String "add_stmt");
          ("cls", J.String "Activity_0");
          ("meth", J.String "onCreate");
          ("arity", J.Int 0);
          ("stmt", J.Obj [ ("new", J.List [ J.String "srv_tmp"; J.String "android.widget.Button" ]) ]);
        ];
    ]

let patch_of_edits edits =
  match Corpus.Patch.of_json edits with
  | Ok p -> p
  | Error e -> Alcotest.failf "test patch does not parse: %s" e

(* Rendered answers a protocol client would see, computed locally. *)
let local_answers app nodes =
  let _, solved = Gator.Incremental.analyze_solved app in
  let q = Gator.Query.create ~hierarchy:app.Framework.App.hierarchy solved in
  List.map
    (fun node ->
      match Gator.Query.points_to q node with
      | Some values ->
          Ok (J.List (List.map (fun v -> J.String (Fmt.str "%a" Gator.Node.pp_value v)) values))
      | None -> Error "unknown-node")
    nodes

let test_concurrent_patch () =
  with_daemon (fun socket ->
      ignore (expect_ok socket (req_load "XBMC"));
      let base = xbmc () in
      let patched =
        match Corpus.Patch.apply base (patch_of_edits patch_edits) with
        | Ok app -> app
        | Error e -> Alcotest.failf "patch: %s" e
      in
      (* probe nodes: existing locations plus the patch-minted one *)
      let fresh =
        Gator.Node.N_var
          ({ Gator.Node.mid_cls = "Activity_0"; mid_name = "onCreate"; mid_arity = 0 }, "srv_tmp")
      in
      let r = Gator.Analysis.analyze base in
      let existing =
        match Gator.Graph.locations r.Gator.Analysis.graph with
        | a :: b :: c :: _ -> [ a; b; c ]
        | l -> l
      in
      let nodes = fresh :: existing in
      let pre = local_answers base nodes and post = local_answers patched nodes in
      let failures = Queue.create () in
      let mutex = Mutex.create () in
      let fail fmt =
        Printf.ksprintf
          (fun s ->
            Mutex.lock mutex;
            Queue.add s failures;
            Mutex.unlock mutex)
          fmt
      in
      let client_loop tid =
        match Server.Client.connect_retry socket with
        | Error e -> fail "client %d: %s" tid e
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Server.Client.close c)
              (fun () ->
                for round = 1 to 30 do
                  List.iteri
                    (fun i node ->
                      match Server.Client.rpc c (req_points_to "XBMC" node) with
                      | Error e -> fail "client %d: rpc: %s" tid e
                      | Ok response -> (
                          let expected =
                            match generation response with
                            | Some 0 -> Some (List.nth pre i)
                            | Some 1 -> Some (List.nth post i)
                            | Some g ->
                                fail "client %d: impossible generation %d" tid g;
                                None
                            | None ->
                                (* error envelopes carry no generation:
                                   only unknown-node on the fresh,
                                   pre-patch node is legitimate *)
                                Some (Error "unknown-node")
                          in
                          match expected with
                          | None -> ()
                          | Some (Ok payload) -> (
                              match ok_payload response with
                              | Some got when J.equal got payload -> ()
                              | _ ->
                                  fail "client %d round %d: torn answer for node %d: %s" tid round
                                    i (to_s response))
                          | Some (Error code) ->
                              if error_code response <> Some code then
                                fail "client %d round %d: expected %s error, got %s" tid round code
                                  (to_s response)))
                    nodes
                done)
      in
      let clients = List.init 4 (fun tid -> Thread.create client_loop tid) in
      (* fire the patch while the clients hammer the daemon *)
      Thread.yield ();
      let patch_response =
        expect_ok socket (P.request_to_json (P.R_patch { app = "XBMC"; edits = patch_edits }))
      in
      Alcotest.(check (option int)) "patch bumps generation" (Some 1) (generation patch_response);
      List.iter Thread.join clients;
      if not (Queue.is_empty failures) then Alcotest.failf "%s" (Queue.peek failures);
      (* after the dust settles every answer is post-patch *)
      List.iteri
        (fun i node ->
          let response = expect_ok socket (req_points_to "XBMC" node) in
          Alcotest.(check (option int)) "settled generation" (Some 1) (generation response);
          match (List.nth post i, ok_payload response) with
          | Ok payload, Some got ->
              Alcotest.(check bool) "settled answer" true (J.equal payload got)
          | Error _, _ -> Alcotest.failf "post-patch reference missing for node %d" i
          | Ok _, None -> Alcotest.failf "settled query errored: %s" (to_s response))
        nodes)

(* ------------------------------------------------------------------ *)
(* Crash recovery: a fresh daemon over the same state directory serves
   the patched solution from its snapshot, without re-solving, and
   answers byte-identically. *)

let test_crash_recovery () =
  let state_dir = Filename.temp_file "gator_state" "" in
  Sys.remove state_dir;
  let cleanup () =
    if Sys.file_exists state_dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat state_dir f)) (Sys.readdir state_dir);
      Unix.rmdir state_dir
    end
  in
  Fun.protect ~finally:cleanup (fun () ->
      let nodes =
        [
          Gator.Node.N_var
            ( { Gator.Node.mid_cls = "Activity_0"; mid_name = "onCreate"; mid_arity = 0 },
              "srv_tmp" );
          Gator.Node.N_field "f";
        ]
      in
      let t1 = mk_server ~state_dir () in
      Alcotest.(check (option string)) "load" None (error_code (handle_json t1 (req_load "XBMC")));
      Alcotest.(check (option string))
        "patch" None
        (error_code
           (handle_json t1 (P.request_to_json (P.R_patch { app = "XBMC"; edits = patch_edits }))));
      let answers t = List.map (fun n -> handle t (req_points_to "XBMC" n)) nodes in
      let before = answers t1 in
      (* "crash": drop the daemon on the floor, start a new one cold *)
      let t2 = mk_server ~state_dir () in
      let load2 = handle_json t2 (req_load "XBMC") in
      Alcotest.(check (option string)) "recovered load" None (error_code load2);
      Alcotest.(check (option int)) "patch generation survives" (Some 1) (generation load2);
      (match J.member "ok" load2 with
      | Some ok -> (
          match J.member "source" ok with
          | Some (J.String "snapshot") -> ()
          | other ->
              Alcotest.failf "expected snapshot recovery, got %s"
                (match other with Some j -> to_s j | None -> "<none>"))
      | None -> Alcotest.fail "load response has no ok payload");
      Alcotest.(check (list string)) "answers identical after restart" before (answers t2);
      (* corrupt snapshot: recovery falls back to a full solve but the
         answers are STILL identical (the patches replay) *)
      let snap = Filename.concat state_dir "XBMC.snap.json" in
      let oc = open_out snap in
      output_string oc "{\"corrupt\": true";
      close_out oc;
      let t3 = mk_server ~state_dir () in
      let load3 = handle_json t3 (req_load "XBMC") in
      Alcotest.(check (option string)) "corrupt-state load" None (error_code load3);
      (match J.member "ok" load3 with
      | Some ok -> (
          match J.member "source" ok with
          | Some (J.String "solved") -> ()
          | other ->
              Alcotest.failf "expected full-solve fallback, got %s"
                (match other with Some j -> to_s j | None -> "<none>"))
      | None -> Alcotest.fail "load response has no ok payload");
      Alcotest.(check (list string)) "answers identical after corrupt state" before (answers t3))

(* The stats reply is cumulative per loaded app: a patch replaces the
   query handle (fresh memo over the new solved state) but must NOT
   zero the counters a client is watching — the daemon snapshots the
   retiring handle's totals into the fresh one. *)
let test_stats_survive_patch () =
  let t = mk_server () in
  Alcotest.(check (option string)) "load ok" None (error_code (handle_json t (req_load "XBMC")));
  let r, _ = Gator.Incremental.analyze_solved (xbmc ()) in
  let probes =
    match Gator.Graph.locations r.Gator.Analysis.graph with
    | a :: b :: c :: _ -> [ a; b; c ]
    | l -> l
  in
  List.iter (fun node -> ignore (handle_json t (req_points_to "XBMC" node))) probes;
  let stat_field name =
    match ok_payload (handle_json t (P.request_to_json (P.R_stats "XBMC"))) with
    | Some (J.Obj fields) -> (
        match List.assoc_opt name fields with
        | Some (J.Int v) -> v
        | _ -> Alcotest.failf "stats reply lacks %S" name)
    | _ -> Alcotest.fail "stats reply not an object"
  in
  Alcotest.(check int) "queries before the patch" (List.length probes) (stat_field "queries");
  let patched =
    handle_json t (P.request_to_json (P.R_patch { app = "XBMC"; edits = patch_edits }))
  in
  Alcotest.(check (option int)) "patch bumps generation" (Some 1) (generation patched);
  Alcotest.(check int) "queries survive the patch" (List.length probes) (stat_field "queries");
  List.iter (fun node -> ignore (handle_json t (req_points_to "XBMC" node))) probes;
  Alcotest.(check int) "and keep accumulating" (2 * List.length probes) (stat_field "queries")

let suite =
  [
    Alcotest.test_case "dispatch: answers, envelopes, survival" `Quick test_dispatch;
    Alcotest.test_case "stats survive a patch" `Quick test_stats_survive_patch;
    Alcotest.test_case "operand codecs round-trip" `Quick test_codecs;
    Alcotest.test_case "hostile frames against a live daemon" `Quick test_hostile_frames;
    Alcotest.test_case "crash recovery from snapshot state" `Quick test_crash_recovery;
    Alcotest.test_case "concurrent queries during a patch" `Slow test_concurrent_patch;
    QCheck_alcotest.to_alcotest ~long:true test_fuzz;
  ]
