(* The frozen shared interner tier.  Two layers of evidence: unit
   tests pin the watermark arithmetic itself — frozen window ids,
   boundary symbols, decode round-trips, and the no-mint guarantee
   that nothing ever writes the frozen tier — and differential tests
   show the tier is invisible to the analysis: shared-tier and
   private-tier runs produce the same solution (down to byte-identical
   corpus tables) across engines, random apps, cycle-heavy apps, and
   worker pools. *)
open Gator

let shared_config = { Config.default with shared_intern = true }
let private_config = { Config.default with shared_intern = false }
let with_solver solver config = { config with Config.solver }
let engines = [ Config.Naive; Config.Delta; Config.Interned ]
let lbase = Layouts.Resource.layout_base
let vbase = Layouts.Resource.view_base

(* ------------------------------------------------------------------ *)
(* Watermark arithmetic on a small custom tier *)

(* A 4-layout / 6-view frozen window: ids 0..3 are layout ids, 4..9
   view ids, the two unknown-id markers take 10 and 11 (and the ⊤ rid
   sentinel takes rid 10), so the watermarks are 12/11 and the first
   private symbol of either kind mints at its watermark. *)
let test_watermark_boundary () =
  let sh = Intern.make_shared ~layout_ids:4 ~view_ids:6 in
  Alcotest.(check (pair int int)) "tier counts" (12, 11) (Intern.shared_counts sh);
  let it = Intern.create ~shared:sh () in
  Alcotest.(check (pair int int)) "watermarks" (12, 11) (Intern.watermarks it);
  Alcotest.check Alcotest.int "frozen tier pre-counts values" 12 (Intern.value_count it);
  Alcotest.check Alcotest.int "frozen tier pre-counts rids" 11 (Intern.rid_count it);
  (* frozen hits are pure arithmetic: base offset, no pool growth *)
  Alcotest.check Alcotest.int "first layout id" 0 (Intern.value it (Node.V_layout_id lbase));
  Alcotest.check Alcotest.int "last layout id" 3 (Intern.value it (Node.V_layout_id (lbase + 3)));
  Alcotest.check Alcotest.int "first view id" 4 (Intern.value it (Node.V_view_id vbase));
  (* the last view symbol of the frozen windows *)
  Alcotest.check Alcotest.int "last frozen view id" 9 (Intern.value it (Node.V_view_id (vbase + 5)));
  (* the ⊤ markers sit right after the windows — inside the frozen
     tier, so interning them never mints, and their fixed offsets can
     never collide with a window entry *)
  Alcotest.check Alcotest.int "layout ⊤ marker id" 10 (Intern.value it Node.V_layout_top);
  Alcotest.check Alcotest.int "view-id ⊤ marker id" 11 (Intern.value it Node.V_view_id_top);
  Alcotest.check Alcotest.int "no private values minted" 12 (Intern.value_count it);
  (* one past the window: the first private id is the watermark *)
  Alcotest.check Alcotest.int "first overflow id" 12 (Intern.value it (Node.V_view_id (vbase + 6)));
  Alcotest.check Alcotest.int "overflow minted one value" 13 (Intern.value_count it);
  (* a layout id outside the layout window is private too, even though
     it is numerically below the view window *)
  Alcotest.check Alcotest.int "layout id past its window is private" 13
    (Intern.value it (Node.V_layout_id (lbase + 4)));
  (* re-intern is stable across the boundary *)
  Alcotest.check Alcotest.int "frozen re-intern stable" 9
    (Intern.value it (Node.V_view_id (vbase + 5)));
  Alcotest.check Alcotest.int "overflow re-intern stable" 12
    (Intern.value it (Node.V_view_id (vbase + 6)));
  Alcotest.check Alcotest.int "marker re-intern stable" 10 (Intern.value it Node.V_layout_top);
  Alcotest.check Alcotest.int "still two private values" 14 (Intern.value_count it);
  (* decode round-trips both tiers *)
  for vid = 0 to Intern.value_count it - 1 do
    let v = Intern.value_of it vid in
    Alcotest.check Alcotest.int (Printf.sprintf "value %d round-trips" vid) vid
      (Intern.value it v)
  done;
  (* the rid pool follows the same windows, with the ⊤ sentinel raw id
     frozen right after them *)
  Alcotest.check Alcotest.int "frozen rid" 2 (Intern.rid it (lbase + 2));
  Alcotest.check Alcotest.int "last frozen rid" 9 (Intern.rid it (vbase + 5));
  Alcotest.check Alcotest.int "⊤ sentinel rid" 10 (Intern.rid it Node.top_view_id_raw);
  Alcotest.check Alcotest.int "no private rids minted" 11 (Intern.rid_count it);
  Alcotest.check Alcotest.int "overflow rid" 11 (Intern.rid it (vbase + 6));
  Alcotest.check Alcotest.int "one private rid" 12 (Intern.rid_count it);
  for rid = 0 to Intern.rid_count it - 1 do
    Alcotest.check Alcotest.int
      (Printf.sprintf "rid %d round-trips" rid)
      rid
      (Intern.rid it (Intern.rid_of it rid))
  done;
  (* degenerate windows: the markers survive even 0-sized windows
     (nothing to collide with, ids 0/1 and rid 0) *)
  let sh0 = Intern.make_shared ~layout_ids:0 ~view_ids:0 in
  Alcotest.(check (pair int int)) "empty-window tier counts" (2, 1) (Intern.shared_counts sh0);
  let it0 = Intern.create ~shared:sh0 () in
  Alcotest.check Alcotest.int "empty-window layout ⊤" 0 (Intern.value it0 Node.V_layout_top);
  Alcotest.check Alcotest.int "empty-window view-id ⊤" 1 (Intern.value it0 Node.V_view_id_top);
  Alcotest.check Alcotest.int "empty-window ⊤ rid" 0 (Intern.rid it0 Node.top_view_id_raw);
  Alcotest.check Alcotest.int "empty-window no value mints" 2 (Intern.value_count it0);
  Alcotest.check Alcotest.int "empty-window no rid mints" 1 (Intern.rid_count it0)

(* Non-minting lookups resolve frozen symbols on a fresh interner
   without growing anything. *)
let test_lookups_never_mint () =
  let sh = Intern.make_shared ~layout_ids:4 ~view_ids:6 in
  let it = Intern.create ~shared:sh () in
  Alcotest.(check (option int)) "find_value hits the tier" (Some 7)
    (Intern.find_value it (Node.V_view_id (vbase + 3)));
  Alcotest.(check (option int)) "rid_opt hits the tier" (Some 1) (Intern.rid_opt it (lbase + 1));
  Alcotest.(check (option int)) "find_value misses past the window" None
    (Intern.find_value it (Node.V_view_id (vbase + 6)));
  Alcotest.(check (option int)) "rid_opt misses past the window" None
    (Intern.rid_opt it (vbase + 6));
  Alcotest.(check (option int)) "find_value hits the ⊤ markers" (Some 10)
    (Intern.find_value it Node.V_layout_top);
  Alcotest.(check (option int)) "rid_opt hits the ⊤ sentinel" (Some 10)
    (Intern.rid_opt it Node.top_view_id_raw);
  Alcotest.check Alcotest.int "no values minted" 12 (Intern.value_count it);
  Alcotest.check Alcotest.int "no rids minted" 11 (Intern.rid_count it)

(* The id-stability argument: frozen ids are a pure function of the
   symbol, so every interner over the global tier — across graphs,
   across domains — agrees without coordination. *)
let test_global_tier_stable_ids () =
  let sh = Intern.shared_tier () in
  let values, rids = Intern.shared_counts sh in
  Alcotest.check Alcotest.bool "global tier is non-empty" true (values > 0 && rids > 0);
  let a = Intern.create ~shared:sh () and b = Intern.create ~shared:sh () in
  Alcotest.(check (pair int int)) "watermarks match tier" (values, rids) (Intern.watermarks a);
  for i = 0 to 19 do
    let lv = Node.V_layout_id (lbase + i) and vv = Node.V_view_id (vbase + i) in
    Alcotest.check Alcotest.int "layout ids agree across interners" (Intern.value a lv)
      (Intern.value b lv);
    Alcotest.check Alcotest.int "view ids agree across interners" (Intern.value a vv)
      (Intern.value b vv);
    Alcotest.check Alcotest.bool "frozen ids sit below the watermark" true
      (Intern.value a lv < values && Intern.value a vv < values)
  done;
  Alcotest.check Alcotest.int "nothing minted in a" values (Intern.value_count a);
  Alcotest.check Alcotest.int "nothing minted in b" values (Intern.value_count b)

(* Extraction, solving, and querying a whole app never write the
   frozen tier: the global counts are bitwise before = after, and the
   query engine (which only uses non-minting lookups) leaves the
   graph's own pools untouched too. *)
let test_no_mint_through_analysis_and_queries () =
  let before = Intern.shared_counts (Intern.shared_tier ()) in
  let app = Corpus.Apps.generate (Option.get (Corpus.Apps.by_name "XBMC")) in
  let r, solved = Incremental.analyze_solved ~config:shared_config app in
  let it = Solve.solved_interner solved in
  let wm_values, wm_rids = Intern.watermarks it in
  Alcotest.(check (pair int int)) "graph interner sits on the global tier" before
    (wm_values, wm_rids);
  let counts () = (Intern.value_count it, Intern.rid_count it, Intern.node_count it) in
  let minted = counts () in
  let q = Query.create ~hierarchy:app.Framework.App.hierarchy solved in
  List.iter (fun node -> ignore (Query.points_to q node)) (Graph.locations r.Analysis.graph);
  Alcotest.(check (triple int int int)) "queries mint nothing" minted (counts ());
  Alcotest.(check (pair int int))
    "frozen tier untouched by analysis + queries" before
    (Intern.shared_counts (Intern.shared_tier ()))

(* ------------------------------------------------------------------ *)
(* Differential: shared tier vs private tier, bit-identical *)

let check_shared_private name app =
  List.iter
    (fun solver ->
      let shared = Analysis.analyze ~config:(with_solver solver shared_config) app in
      let private_ = Analysis.analyze ~config:(with_solver solver private_config) app in
      Test_delta.check_same_solution
        (Printf.sprintf "%s[%s: shared vs private]" name (Config.solver_name solver))
        shared private_)
    engines

let test_corpus_apps_shared_private () =
  List.iter
    (fun name ->
      let app = Corpus.Apps.generate (Option.get (Corpus.Apps.by_name name)) in
      check_shared_private name app)
    (* ConnectBot fits inside the frozen view window; Astrid's 230 view
       ids overflow it, so its analysis exercises both tiers at once *)
    [ "ConnectBot"; "Astrid" ]

(* An app whose view-id pool ends exactly at the frozen window edge
   (its last symbol takes the last frozen id), and its sibling one id
   wider (its last symbol is the first private id). *)
let test_watermark_boundary_app () =
  let _, rids = Intern.shared_counts (Intern.shared_tier ()) in
  let base = Option.get (Corpus.Apps.by_name "ConnectBot") in
  let window = Intern.default_view_window in
  List.iter
    (fun view_ids ->
      (* enough layout nodes (each drawing a fresh id, no sharing) to
         exhaust the id pool, so the pool's last id is really used *)
      let spec =
        {
          base with
          Corpus.Spec.sp_name = Printf.sprintf "Boundary%d" view_ids;
          sp_view_ids = view_ids;
          sp_inflated_nodes = 2 * window;
          sp_id_sharing = 0.0;
        }
      in
      (match Corpus.Spec.validate spec with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "boundary spec invalid: %s" msg);
      let app = Corpus.Apps.generate spec in
      (* rids are minted by the interned solve (one per view-id fact),
         so inspect the interner behind an interned-engine analysis *)
      let r = Analysis.analyze ~config:(with_solver Config.Interned shared_config) app in
      let it = Graph.interner r.Analysis.graph in
      (* the last id of the frozen view window is reachable either way
         (the ⊤ sentinel sits after it, at the last frozen rid) *)
      Alcotest.(check (option int)) "last frozen view id"
        (Some (Intern.default_layout_window + window - 1))
        (Intern.rid_opt it (vbase + window - 1));
      let crossed = view_ids > window in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "view_ids=%d %s the watermark" view_ids
           (if crossed then "crosses" else "stays below"))
        crossed
        (Intern.rid_count it > rids);
      if crossed then
        (* the first symbol past the window got the first private id *)
        Alcotest.(check (option int)) "first overflow view id" (Some rids)
          (Intern.rid_opt it (vbase + window));
      check_shared_private spec.Corpus.Spec.sp_name app)
    [ window; window + 1 ]

let test_cycle_heavy_shared_private () =
  let app =
    Corpus.Gen.cyclic_app ~name:"CycShared" ~chains:3 ~chain_len:9 ~two_cycles:2 ~bridges:4
      ~seed:41 ()
  in
  check_shared_private "CycShared" app

let test_qcheck_shared_private =
  QCheck.Test.make ~count:10 ~name:"random app: shared tier = private tier"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Util.Prng.create seed in
      let spec = Corpus.Gen.random_spec ~name:(Printf.sprintf "QShared_%d" seed) rng in
      check_shared_private spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec);
      true)

(* Whole corpus, both tiers, jobs 1 and 4: the rendered tables must be
   byte-identical — interning strategy may never leak into results. *)
let test_corpus_reports_shared_private () =
  let reference = Report.Experiments.run_corpus ~config:private_config ~jobs:1 () in
  List.iter
    (fun jobs ->
      let candidate = Report.Experiments.run_corpus ~config:shared_config ~jobs () in
      let label = Printf.sprintf "shared/jobs=%d" jobs in
      Alcotest.check Alcotest.string (label ^ ": table1 bytes")
        (Report.Experiments.table1 reference)
        (Report.Experiments.table1 candidate);
      Alcotest.check Alcotest.string (label ^ ": table2 bytes")
        (Report.Experiments.table2 ~timings:false reference)
        (Report.Experiments.table2 ~timings:false candidate))
    [ 1; 4 ]

let suite =
  [
    Alcotest.test_case "watermark boundary ids and round-trips" `Quick test_watermark_boundary;
    Alcotest.test_case "non-minting lookups on the frozen tier" `Quick test_lookups_never_mint;
    Alcotest.test_case "global tier: stable ids across interners" `Quick
      test_global_tier_stable_ids;
    Alcotest.test_case "analysis and queries never write the tier" `Quick
      test_no_mint_through_analysis_and_queries;
    Alcotest.test_case "corpus apps: shared = private (three engines)" `Quick
      test_corpus_apps_shared_private;
    Alcotest.test_case "app at the watermark edge" `Quick test_watermark_boundary_app;
    Alcotest.test_case "cycle-heavy app: shared = private" `Quick test_cycle_heavy_shared_private;
    QCheck_alcotest.to_alcotest test_qcheck_shared_private;
    Alcotest.test_case "corpus tables byte-identical (jobs 1/4)" `Slow
      test_corpus_reports_shared_private;
  ]
