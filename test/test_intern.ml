(* The interned solver and its substrate.  Four layers of evidence:
   the bitset domain must agree operation-for-operation with a
   reference [Set.Make (Int)]; the generic string interner
   ([Util.Interner], the substrate's substrate) must be idempotent and
   round-trip; the hash-consing [Intern] pools must assign dense ids
   that round-trip; and the interned engine must produce the same
   solution as both structural engines — on random apps, on the
   corpus, and under a worker-domain pool — down to byte-identical
   reports.  (The shared frozen tier has its own differential suite in
   [test_shared_intern.ml].) *)
open Gator

let with_solver solver config = { config with Config.solver }

(* ------------------------------------------------------------------ *)
(* Bitset vs Set.Make (Int) *)

module IS = Set.Make (Int)

let test_bitset_random () =
  let rng = Util.Prng.create 97 in
  for _round = 1 to 40 do
    let b = Util.Bitset.create () in
    let r = ref IS.empty in
    for _step = 1 to 400 do
      (* span several words, including indexes right at word breaks *)
      let i =
        if Util.Prng.chance rng 0.2 then
          Util.Prng.int rng 4 * Sys.int_size + Util.Prng.int_in rng (-1) 1 + Sys.int_size
        else Util.Prng.int rng 300
      in
      match Util.Prng.int rng 3 with
      | 0 ->
          let added = Util.Bitset.add b i in
          Alcotest.check Alcotest.bool "add reports growth" (not (IS.mem i !r)) added;
          r := IS.add i !r
      | 1 ->
          Util.Bitset.remove b i;
          r := IS.remove i !r
      | _ -> Alcotest.check Alcotest.bool "mem" (IS.mem i !r) (Util.Bitset.mem b i)
    done;
    Alcotest.check (Alcotest.list Alcotest.int) "elements in order" (IS.elements !r)
      (Util.Bitset.elements b);
    Alcotest.check Alcotest.int "cardinal" (IS.cardinal !r) (Util.Bitset.cardinal b);
    Alcotest.check Alcotest.bool "is_empty" (IS.is_empty !r) (Util.Bitset.is_empty b);
    let copy = Util.Bitset.copy b in
    ignore (Util.Bitset.add copy 1023);
    Alcotest.check Alcotest.bool "copy is independent" false (Util.Bitset.mem b 1023);
    Util.Bitset.clear b;
    Alcotest.check Alcotest.bool "clear empties" true (Util.Bitset.is_empty b)
  done

let test_bitset_union_delta () =
  let rng = Util.Prng.create 3301 in
  for _round = 1 to 60 do
    let into = Util.Bitset.create () and src = Util.Bitset.create () in
    let ri = ref IS.empty and rs = ref IS.empty in
    for _step = 1 to 120 do
      let i = Util.Prng.int rng (4 * Sys.int_size) in
      if Util.Prng.bool rng then begin
        ignore (Util.Bitset.add into i);
        ri := IS.add i !ri
      end
      else begin
        ignore (Util.Bitset.add src i);
        rs := IS.add i !rs
      end
    done;
    let expected_fresh = IS.diff !rs !ri in
    let fresh = ref IS.empty in
    Util.Bitset.union_delta ~into src ~on_new:(fun i ->
        Alcotest.check Alcotest.bool "on_new visits each bit once" false (IS.mem i !fresh);
        fresh := IS.add i !fresh);
    Alcotest.check (Alcotest.list Alcotest.int) "on_new = src \\ into"
      (IS.elements expected_fresh) (IS.elements !fresh);
    Alcotest.check (Alcotest.list Alcotest.int) "into = union"
      (IS.elements (IS.union !ri !rs))
      (Util.Bitset.elements into);
    Alcotest.check (Alcotest.list Alcotest.int) "src untouched" (IS.elements !rs)
      (Util.Bitset.elements src);
    Alcotest.check Alcotest.bool "equal reflexive" true (Util.Bitset.equal into into);
    Alcotest.check Alcotest.bool "equal vs src"
      (IS.equal (IS.union !ri !rs) !rs)
      (Util.Bitset.equal into src)
  done

(* ------------------------------------------------------------------ *)
(* Util.Interner: the generic string interner (symbols for class,
   method, and id names).  Folded in from the former
   [test_interner.ml]; distinct from the [Intern] value/node pools
   tested below. *)

let test_string_interner_idempotent () =
  let t = Util.Interner.create () in
  let a = Util.Interner.intern t "hello" in
  let b = Util.Interner.intern t "hello" in
  Alcotest.check Alcotest.int "same symbol" 0 (Util.Interner.compare_sym a b)

let test_string_interner_distinct () =
  let t = Util.Interner.create () in
  let a = Util.Interner.intern t "a" in
  let b = Util.Interner.intern t "b" in
  Alcotest.check Alcotest.bool "distinct" true (Util.Interner.compare_sym a b <> 0)

let test_string_interner_roundtrip () =
  let t = Util.Interner.create () in
  let names = List.init 1000 (Printf.sprintf "sym_%d") in
  let syms = List.map (Util.Interner.intern t) names in
  List.iter2
    (fun name sym -> Alcotest.check Alcotest.string "name roundtrip" name (Util.Interner.name t sym))
    names syms;
  Alcotest.check Alcotest.int "count" 1000 (Util.Interner.count t)

let test_string_interner_mem () =
  let t = Util.Interner.create () in
  ignore (Util.Interner.intern t "x");
  Alcotest.check Alcotest.bool "mem interned" true (Util.Interner.mem t "x");
  Alcotest.check Alcotest.bool "mem foreign" false (Util.Interner.mem t "y")

let test_string_interner_foreign_symbol () =
  let t = Util.Interner.create () in
  Alcotest.check_raises "foreign" Not_found (fun () ->
      let other = Util.Interner.create () in
      let sym = Util.Interner.intern other "z" in
      ignore (Util.Interner.name t sym))

let qcheck_string_interner_roundtrip =
  QCheck.Test.make ~name:"string intern/name roundtrip" ~count:500
    QCheck.(small_list (string_of_size Gen.(1 -- 20)))
    (fun names ->
      let t = Util.Interner.create () in
      List.for_all
        (fun name -> Util.Interner.name t (Util.Interner.intern t name) = name)
        names)

(* ------------------------------------------------------------------ *)
(* Interner: dense ids, stable on re-intern, structural round-trip *)

let test_interner_roundtrip () =
  let r = Analysis.analyze (Corpus.Connectbot.app ()) in
  let it = Intern.create () in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun node ->
      let nid = Intern.node it node in
      Alcotest.check Alcotest.bool "node id round-trips" true
        (Node.compare (Intern.node_of it nid) node = 0);
      Alcotest.check Alcotest.int "node re-intern is stable" nid (Intern.node it node);
      Graph.VS.iter
        (fun v ->
          let vid = Intern.value it v in
          Hashtbl.replace seen vid ();
          Alcotest.check Alcotest.bool "value round-trips" true
            (Node.compare_value (Intern.value_of it vid) v = 0);
          Alcotest.check Alcotest.int "value re-intern is stable" vid (Intern.value it v);
          match v with
          | Node.V_view w ->
              let wid = Intern.view_of_value_id it vid in
              Alcotest.check Alcotest.bool "view cross-map" true
                (Node.compare_view (Intern.view_of it wid) w = 0);
              Alcotest.check Alcotest.int "value<->view maps invert" vid
                (Intern.value_of_view_id it wid)
          | _ -> ())
        (Graph.set_of r.graph node))
    (Graph.locations r.graph);
  (* ids are dense: every id below the pool count was assigned *)
  Alcotest.check Alcotest.int "value ids are dense" (Intern.value_count it) (Hashtbl.length seen);
  for vid = 0 to Intern.value_count it - 1 do
    Alcotest.check Alcotest.bool "no gap in value ids" true (Hashtbl.mem seen vid)
  done

(* ------------------------------------------------------------------ *)
(* Engine differential: naive = delta = interned *)

let engines = [ Config.Naive; Config.Delta; Config.Interned ]

let analyze_with solver app = Analysis.analyze ~config:(with_solver solver Config.default) app

let check_three name app =
  let reference = analyze_with Config.Naive app in
  List.iter
    (fun solver ->
      let candidate = analyze_with solver app in
      Test_delta.check_same_solution
        (Printf.sprintf "%s[naive vs %s]" name (Config.solver_name solver))
        reference candidate)
    engines;
  reference

let test_connectbot_three_engines () =
  let app = Corpus.Connectbot.app () in
  ignore (check_three "ConnectBot" app);
  (* ablation configs flow through the interned engine too *)
  List.iter
    (fun config ->
      let naive = Analysis.analyze ~config:(with_solver Config.Naive config) app in
      let interned = Analysis.analyze ~config:(with_solver Config.Interned config) app in
      Test_delta.check_same_solution "ConnectBot ablation" naive interned)
    [
      Config.baseline;
      { Config.default with listener_callbacks = false };
      { Config.default with inline_depth = 1 };
      { Config.default with cast_filtering = false };
    ]

let test_interned_work_counters () =
  let app = Corpus.Gen.generate (Option.get (Corpus.Apps.by_name "XBMC")) in
  let r = analyze_with Config.Interned app in
  let s = r.stats in
  Alcotest.check Alcotest.bool "values interned" true (s.Solve.interned_values > 0);
  Alcotest.check Alcotest.bool "nodes interned" true (s.Solve.interned_nodes > 0);
  Alcotest.check Alcotest.bool "bitset words allocated" true (s.Solve.bitset_words > 0);
  Alcotest.check Alcotest.bool "word-level unions performed" true (s.Solve.union_calls > 0);
  (* structural engines must report zeroed interner counters *)
  let d = analyze_with Config.Delta app in
  Alcotest.check Alcotest.int "delta reports no interner work" 0
    (d.stats.Solve.interned_values + d.stats.Solve.bitset_words + d.stats.Solve.union_calls)

let test_qcheck_three_engines =
  QCheck.Test.make ~count:10 ~name:"random app: naive = delta = interned"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Util.Prng.create seed in
      let spec = Corpus.Gen.random_spec ~name:(Printf.sprintf "QIntern_%d" seed) rng in
      ignore (check_three spec.Corpus.Spec.sp_name (Corpus.Gen.generate spec));
      true)

(* Corpus through all three engines: the solutions must render to
   byte-identical tables (solver identity only shows up in the solver
   column of the work-counter report), sequentially and with jobs=4. *)
let test_corpus_reports_identical () =
  let reference = Report.Experiments.run_corpus ~config:Config.default ~jobs:1 () in
  List.iter
    (fun solver ->
      let config = with_solver solver Config.default in
      List.iter
        (fun jobs ->
          let label = Printf.sprintf "%s/jobs=%d" (Config.solver_name solver) jobs in
          let candidate = Report.Experiments.run_corpus ~config ~jobs () in
          Alcotest.check Alcotest.string (label ^ ": table1 bytes")
            (Report.Experiments.table1 reference)
            (Report.Experiments.table1 candidate);
          Alcotest.check Alcotest.string (label ^ ": table2 bytes")
            (Report.Experiments.table2 ~timings:false reference)
            (Report.Experiments.table2 ~timings:false candidate))
        [ 1; 4 ])
    engines;
  (* the interned work-counter report itself is schedule-independent *)
  let interned = with_solver Config.Interned Config.default in
  Alcotest.check Alcotest.string "interned solverstats bytes, jobs 1 = jobs 4"
    (Report.Experiments.solver_stats (Report.Experiments.run_corpus ~config:interned ~jobs:1 ()))
    (Report.Experiments.solver_stats (Report.Experiments.run_corpus ~config:interned ~jobs:4 ()))

(* ------------------------------------------------------------------ *)
(* SCC condensation: cycle-heavy apps *)

(* [Bitset.same] is physical identity — the aliasing test for shared
   component sets in the condensed engine. *)
let test_bitset_same () =
  let a = Util.Bitset.create () in
  ignore (Util.Bitset.add a 3);
  let alias = a and copy = Util.Bitset.copy a in
  Alcotest.check Alcotest.bool "alias is same" true (Util.Bitset.same a alias);
  Alcotest.check Alcotest.bool "copy is not same" false (Util.Bitset.same a copy);
  Alcotest.check Alcotest.bool "copy is still equal" true (Util.Bitset.equal a copy)

let test_cyclic_three_engines () =
  let app =
    Corpus.Gen.cyclic_app ~name:"CycBig" ~chains:3 ~chain_len:9 ~two_cycles:2 ~bridges:4 ~seed:41
      ()
  in
  let reference = check_three "CycBig" app in
  (* the rings actually carry abstract views: the listener registered
     on a ring variable reaches its SETLISTENER operation *)
  let setlistener_ops =
    List.filter
      (fun (op : Graph.op) ->
        match op.site.o_kind with Framework.Api.Set_listener _ -> true | _ -> false)
      (Graph.ops reference.graph)
  in
  Alcotest.check Alcotest.bool "listener reaches its registration" true
    (List.exists (fun op -> Analysis.op_listeners reference op <> []) setlistener_ops)

(* The condensation stats surface through the interned engine, and the
   listener's empty-bodied handlers force node ids to be minted after
   the flow CSR froze — the path covered by the [irep] bounds guard. *)
let test_scc_stats_and_midsolve_minting () =
  let chain_len = 8 in
  let app =
    Corpus.Gen.cyclic_app ~name:"CycStats" ~chains:2 ~chain_len ~two_cycles:1 ~bridges:2 ~seed:5
      ()
  in
  let r = analyze_with Config.Interned app in
  let s = r.stats in
  Alcotest.check Alcotest.bool "sccs counted" true (s.Solve.scc_count > 0);
  Alcotest.check Alcotest.bool "a ring condensed" true (s.Solve.largest_scc >= chain_len);
  let fc = Graph.frozen_flow r.graph in
  Alcotest.check Alcotest.bool "nodes minted after freeze" true
    (s.Solve.interned_nodes > fc.Graph.fc_nodes);
  (* structural engines report no condensation *)
  let d = analyze_with Config.Delta app in
  Alcotest.check Alcotest.int "delta reports no sccs" 0
    (d.stats.Solve.scc_count + d.stats.Solve.largest_scc)

let test_qcheck_cyclic_three_engines =
  QCheck.Test.make ~count:10 ~name:"cyclic app: naive = delta = interned"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Util.Prng.create seed in
      let app = Corpus.Gen.random_cyclic_app ~name:(Printf.sprintf "QCyc_%d" seed) rng in
      ignore (check_three (Printf.sprintf "QCyc_%d" seed) app);
      true)

(* Cycle-heavy batch under the worker pool: the condensed engine's
   solution must be independent of domain scheduling.  Every pooled
   interned run is checked against a sequential naive reference. *)
let test_cyclic_jobs () =
  let mk i =
    Corpus.Gen.cyclic_app
      ~name:(Printf.sprintf "CycJ%d" i)
      ~chains:(1 + (i mod 3))
      ~chain_len:(3 + i) ~two_cycles:(i mod 3) ~bridges:i ~seed:(900 + i) ()
  in
  let apps = List.init 6 mk in
  let references = List.map (analyze_with Config.Naive) apps in
  List.iter
    (fun jobs ->
      let outcomes =
        Pool.run ~jobs (List.map (fun app () -> analyze_with Config.Interned app) apps)
      in
      List.iteri
        (fun i outcome ->
          Test_delta.check_same_solution
            (Printf.sprintf "CycJ%d[jobs=%d]" i jobs)
            (List.nth references i) (Pool.value_exn outcome))
        outcomes)
    [ 1; 4 ]

let suite =
  [
    Alcotest.test_case "bitset vs reference set" `Quick test_bitset_random;
    Alcotest.test_case "bitset union_delta semantics" `Quick test_bitset_union_delta;
    Alcotest.test_case "bitset physical identity (same)" `Quick test_bitset_same;
    Alcotest.test_case "string interner idempotent" `Quick test_string_interner_idempotent;
    Alcotest.test_case "string interner distinct symbols" `Quick test_string_interner_distinct;
    Alcotest.test_case "string interner roundtrip (growth)" `Quick test_string_interner_roundtrip;
    Alcotest.test_case "string interner mem" `Quick test_string_interner_mem;
    Alcotest.test_case "string interner foreign symbol raises" `Quick
      test_string_interner_foreign_symbol;
    QCheck_alcotest.to_alcotest qcheck_string_interner_roundtrip;
    Alcotest.test_case "interner round-trip and dense ids" `Quick test_interner_roundtrip;
    Alcotest.test_case "ConnectBot: three engines agree" `Quick test_connectbot_three_engines;
    Alcotest.test_case "interned work counters" `Quick test_interned_work_counters;
    QCheck_alcotest.to_alcotest test_qcheck_three_engines;
    Alcotest.test_case "cyclic app: three engines agree" `Quick test_cyclic_three_engines;
    Alcotest.test_case "cyclic app: scc stats and mid-solve minting" `Quick
      test_scc_stats_and_midsolve_minting;
    QCheck_alcotest.to_alcotest test_qcheck_cyclic_three_engines;
    Alcotest.test_case "cyclic batch under pool (jobs 1/4)" `Slow test_cyclic_jobs;
    Alcotest.test_case "corpus reports byte-identical (jobs 1/4)" `Slow
      test_corpus_reports_identical;
  ]
